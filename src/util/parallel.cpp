#include "util/parallel.hpp"

#include "util/flags.hpp"
#include "util/thread_pool.hpp"

namespace bfly {

std::size_t default_thread_count() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

bool parse_thread_count(const char* text, std::size_t* out) {
  u64 value = 0;
  if (!util::parse_bounded_u64(text, 1, 4096, &value)) return false;
  *out = static_cast<std::size_t>(value);
  return true;
}

void parallel_for_chunked(std::size_t begin, std::size_t end, std::size_t threads,
                          const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
                          const CancelToken* cancel) {
  ThreadPool::shared().run_chunked(begin, end, threads, body, cancel);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  parallel_for_chunked(begin, end, default_thread_count(),
                       [&](std::size_t lo, std::size_t hi, std::size_t) {
                         for (std::size_t i = lo; i < hi; ++i) body(i);
                       });
}

}  // namespace bfly
