// Deterministic pseudo-random number generation for simulations.
//
// SplitMix64 seeds Xoshiro256**; both are tiny, fast, and reproducible across
// platforms (unlike std::mt19937 + std::uniform_int_distribution, whose
// distribution output is implementation-defined).
#pragma once

#include <array>
#include <cstdint>

namespace bfly {

/// SplitMix64: used to expand a single seed into a full generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the workhorse generator for routing simulations.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) : state_{} {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift reduction.
  constexpr std::uint64_t below(std::uint64_t bound) {
    // For our simulation bounds (<= 2^32) the bias of a plain 128-bit
    // multiply-high reduction is negligible, but we reject to be exact.
    const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

}  // namespace bfly
