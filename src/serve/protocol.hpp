// bfly::serve wire protocol: JSONL request/response frames for the bflyd
// request daemon (serve/server.hpp) and its clients.
//
// One frame = one JSON object on one line.  Requests name an operation over
// the paper's B_n constructions; every *compute* operation (layout,
// packaging, census, sweep) is a pure function of its parameters, which is
// what makes the serving layer's memoization sound: the request's content
// hash (request_key) names the result forever, and a cache hit is
// byte-identical to a cold compute.
//
// Request frame:
//
//   {"op": "layout" | "packaging" | "census" | "sweep" | "ping" | "stats",
//    "id": "<client correlation token, echoed verbatim>",      (optional)
//    "deadline_ms": <per-request budget, 0 < v <= max>,        (optional)
//    "no_cache": true,                                          (optional)
//    ...op parameters at top level (see parse_request)...}
//
// Response frame (success):
//
//   {"id": "...", "ok": true, "key": "<16 hex>", "cached": true|false,
//    "result": {...}}
//
// The "result" object for a given key is served as the exact byte sequence
// the cold compute produced — the serialized text, not a re-rendered
// document — so replays from the persisted cache and coalesced duplicates
// are bit-identical, and clients may hash the result text.
//
// Response frame (error):
//
//   {"id": "...", "ok": false,
//    "error": {"code": "invalid_request" | "deadline_exceeded" |
//                      "overloaded" | "shutting_down" | "internal",
//              "message": "...", "retry_after_ms": <hint>?}}
//
// "retry_after_ms" accompanies "overloaded" only: a deterministic hint
// derived from queue occupancy and observed service time, never a promise.
//
// See docs/serving.md for the full protocol contract.
#pragma once

#include <string>
#include <string_view>

#include "obs/json.hpp"
#include "sim/sweep.hpp"

namespace bfly::serve {

/// Operations.  kPing / kStats are control operations: admission-exempt,
/// never cached, answered inline by the server.  The other four are compute
/// operations: queued, deadline-governed, memoized by content hash.
enum class Op {
  kPing,
  kStats,
  kLayout,
  kPackaging,
  kCensus,
  kSweep,
};

/// "ping" / "stats" / "layout" / "packaging" / "census" / "sweep".
const char* to_string(Op op);

/// Structured error taxonomy; every failure a client can observe maps to
/// exactly one code (and every code to exactly one ledger bucket — see
/// serve/server.hpp).
enum class ErrorCode {
  kInvalidRequest,    ///< malformed frame, unknown op, out-of-range params
  kDeadlineExceeded,  ///< expired queued, mid-engine, or waiting on a coalesced compute
  kOverloaded,        ///< admission queue full: shed, retry_after_ms attached
  kShuttingDown,      ///< drain in progress (or drain budget exhausted)
  kInternal,          ///< an engine threw (a bug or resource failure, not the client)
};

/// "invalid_request" / "deadline_exceeded" / "overloaded" / "shutting_down" /
/// "internal".
const char* to_string(ErrorCode code);

/// A parsed, validated request.  Parameter fields are meaningful per op; the
/// parser zero-fills the rest, so request_key can hash the whole struct
/// uniformly.
struct Request {
  Op op = Op::kPing;
  std::string id;        ///< echoed verbatim; empty allowed
  u64 deadline_ms = 0;   ///< 0 = use the server default
  bool no_cache = false; ///< bypass memoization: always compute, never store

  // layout (n in [3, 16], layers in [2, 16]): streamed LayoutMetrics of the
  // Section 3/4 recursive grid layout with choose_parameters(n).
  // packaging (n in [1, 16]): the Section 5 hierarchical plan.
  // census (n in [1, 14]): Monte-Carlo link-load census.  The serving bound
  // is tighter than the library's [1, 30]: the census keeps one per-link
  // partial array per worker, and n = 14 keeps that a few MB per request.
  // sweep (n in [1, 14]): one queued-simulation saturation point.
  int n = 0;

  int layers = 2;               ///< layout
  u64 max_offchip_links = 64;   ///< packaging
  i64 chip_side = 20;           ///< packaging
  u64 packets = 0;              ///< census
  u64 seed = 0;                 ///< census, sweep
  double offered_load = 0.0;    ///< sweep
  u64 cycles = 0;               ///< sweep
  u64 warmup_cycles = 0;        ///< sweep
  u64 queue_capacity = 0;       ///< sweep
  u64 shard_count = 0;          ///< sweep (0 = serial engine)

  bool is_compute() const { return op != Op::kPing && op != Op::kStats; }
};

/// Work-bounding caps on compute parameters, enforced by parse_request so a
/// hostile client cannot wedge a dispatcher with one giant request.  These
/// are serving-layer policy (the library itself accepts more); oversize
/// values are invalid_request, not silently clamped.
inline constexpr u64 kMaxCensusPackets = u64{1} << 26;
inline constexpr u64 kMaxSweepCycles = u64{1} << 22;
inline constexpr u64 kMaxSweepQueueCapacity = u64{1} << 20;
inline constexpr u64 kMaxSweepShards = 256;

/// Parses and validates one request document.  Throws InvalidArgument with a
/// client-presentable message on: a non-object document, a missing/unknown
/// "op", mistyped fields, out-of-range parameters (per-op bounds above), or
/// a non-integral value in an integer field.
Request parse_request(const json::Value& doc);

/// parse_request over a raw frame line (parses the JSON first; same throws,
/// plus JSON syntax errors).
Request parse_request_line(std::string_view line);

/// Content hash of a compute request as 16 lowercase hex digits: FNV-1a64
/// over the op tag and every parameter that affects the result — and nothing
/// else (id, deadline_ms, and no_cache are delivery metadata).  Sweep
/// requests hash through exec::sweep_point_key, so a served sweep point and
/// a checkpointed sweep point with the same parameters carry the same key.
/// Two requests key equal iff their results are byte-identical.
std::string request_key(const Request& request);

/// The SweepPoint a kSweep request describes (already validated).
SweepPoint to_sweep_point(const Request& request);

/// Executes a compute request and returns the result *object* (not the
/// envelope).  Pure: identical requests produce byte-identical
/// serializations.  `cancel` (nullable) is threaded into the engines that
/// poll (census chunks, sweep cycle loops); when it trips mid-compute the
/// partial result must be discarded by the caller — the server answers
/// deadline_exceeded instead.  Throws InvalidArgument / InternalError on
/// engine rejection.  kPing yields {"pong": true}; kStats is *not* handled
/// here (it is server state, not a pure function — see Server).
json::Value execute_request(const Request& request, const CancelToken* cancel,
                            std::size_t engine_threads = 0);

/// Success envelope: {"id", "ok": true, "key", "cached", "result": <result
/// text spliced verbatim>}.  `result_text` must be a serialized JSON value
/// (the compute's dump() or a cache payload); it is embedded byte-for-byte.
std::string build_response_ok(std::string_view id, std::string_view key, bool cached,
                              std::string_view result_text);

/// Error envelope; retry_after_ms > 0 attaches the hint (overloaded only by
/// convention).
std::string build_response_error(std::string_view id, ErrorCode code,
                                 std::string_view message, u64 retry_after_ms = 0);

}  // namespace bfly::serve
