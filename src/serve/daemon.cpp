#include "serve/daemon.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/check.hpp"

namespace bfly::serve {

namespace {

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// send(2) until done; false on any error (peer gone).  MSG_NOSIGNAL makes a
/// peer-gone write surface as EPIPE instead of SIGPIPE, so the Daemon library
/// is safe in any host process — not just bflyd, which happens to install
/// SIG_IGN — and in-process embedders (tests, future tools) are never killed
/// by a client that disconnected before its response line was written.
bool write_all(int fd, const char* data, std::size_t size) {
#ifdef MSG_NOSIGNAL
  constexpr int kSendFlags = MSG_NOSIGNAL;
#else
  constexpr int kSendFlags = 0;
#endif
  std::size_t written = 0;
  while (written < size) {
    const ssize_t rc = ::send(fd, data + written, size - written, kSendFlags);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(rc);
  }
  return true;
}

}  // namespace

Daemon::Daemon(DaemonOptions options) : options_(std::move(options)), server_(options_.server) {
  BFLY_REQUIRE(!options_.unix_socket_path.empty() || options_.tcp_port >= 0,
               "either unix_socket_path or tcp_port must be configured");
  BFLY_REQUIRE(pipe(wake_pipe_) == 0, errno_string("pipe"));

  if (!options_.unix_socket_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    BFLY_REQUIRE(listen_fd_ >= 0, errno_string("socket(AF_UNIX)"));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    BFLY_REQUIRE(options_.unix_socket_path.size() < sizeof(addr.sun_path),
                 "unix socket path too long");
    std::strncpy(addr.sun_path, options_.unix_socket_path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_socket_path.c_str());  // stale socket from a crash
    BFLY_REQUIRE(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                 errno_string("bind(unix)"));
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    BFLY_REQUIRE(listen_fd_ >= 0, errno_string("socket(AF_INET)"));
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only, by design
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    BFLY_REQUIRE(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                 errno_string("bind(tcp)"));
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    BFLY_REQUIRE(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0,
                 errno_string("getsockname"));
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  BFLY_REQUIRE(::listen(listen_fd_, 128) == 0, errno_string("listen"));
}

Daemon::~Daemon() {
  shutdown();
  // run() may never have been called (or exited early): close what its
  // teardown would have closed.
  teardown_connections();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
  if (!options_.unix_socket_path.empty()) ::unlink(options_.unix_socket_path.c_str());
}

void Daemon::shutdown() {
  if (shutdown_requested_.exchange(true)) return;
  // Async-signal-safe: one write(2), nothing else.  run()'s poll() wakes on
  // the pipe and does the actual teardown on a normal thread.
  const char byte = 'q';
  [[maybe_unused]] const ssize_t rc = ::write(wake_pipe_[1], &byte, 1);
}

void Daemon::write_line(const std::shared_ptr<Connection>& conn, const std::string& line) {
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->dead.load(std::memory_order_relaxed) || conn->fd < 0) return;
  if (!write_all(conn->fd, line.data(), line.size()) || !write_all(conn->fd, "\n", 1)) {
    conn->dead.store(true, std::memory_order_relaxed);
    // Wake the reader (likely blocked in read) so the connection reaps
    // promptly instead of lingering until the peer times out.  The fd is
    // still valid here: close happens only after the reader is joined, and
    // fd teardown takes write_mu.
    ::shutdown(conn->fd, SHUT_RDWR);
  }
}

void Daemon::serve_connection(const std::shared_ptr<Connection>& conn) {
  std::string buffer;
  char chunk[4096];
  while (!conn->dead.load(std::memory_order_relaxed)) {
    const ssize_t rc = ::read(conn->fd, chunk, sizeof(chunk));
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) break;  // EOF or error (including shutdown(SHUT_RDWR) from run())
    buffer.append(chunk, static_cast<std::size_t>(rc));

    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string frame = buffer.substr(start, nl - start);
      start = nl + 1;
      if (frame.empty()) continue;  // blank lines are keepalive noise, not frames
      // The callback outlives this loop iteration (parked joiners, queued
      // jobs); it holds the connection alive via the shared_ptr.
      server_.submit_frame(
          frame, [conn](std::string line) { write_line(conn, line); });
    }
    buffer.erase(0, start);

    if (buffer.size() > options_.max_frame_bytes) {
      // A frame this long with no newline is not a client we keep serving.
      write_line(conn, build_response_error("", ErrorCode::kInvalidRequest,
                                            "frame exceeds max_frame_bytes"));
      break;
    }
  }
  conn->dead.store(true, std::memory_order_relaxed);
  // Fail any writer still blocked on this socket, then hand the fd to the
  // reaper: `done` (release, paired with the reap's acquire load) is the
  // signal that this thread is exiting and the fd may be joined + closed.
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->done.store(true, std::memory_order_release);
}

void Daemon::reap_finished_connections_locked() {
  for (std::size_t i = 0; i < conns_.size();) {
    const std::shared_ptr<Connection>& conn = conns_[i];
    if (!conn->done.load(std::memory_order_acquire)) {
      ++i;
      continue;
    }
    if (conn->reader.joinable()) conn->reader.join();
    {
      // write_mu: a parked joiner's response may still be in write_line (it
      // sees `dead` and returns, but must never race the close itself).
      std::lock_guard<std::mutex> wlock(conn->write_mu);
      if (conn->fd >= 0) {
        ::close(conn->fd);
        conn->fd = -1;
      }
    }
    conns_[i] = conns_.back();
    conns_.pop_back();
  }
}

void Daemon::teardown_connections() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (const std::shared_ptr<Connection>& conn : conns_) {
    // Safe even if the reader is mid-exit: the fd stays valid until the join
    // below, and a double shutdown is harmless.
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (const std::shared_ptr<Connection>& conn : conns_) {
    if (conn->reader.joinable()) conn->reader.join();
    std::lock_guard<std::mutex> wlock(conn->write_mu);
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  conns_.clear();
}

std::size_t Daemon::tracked_connections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

LedgerSnapshot Daemon::run() {
  while (!shutdown_requested_.load(std::memory_order_relaxed)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // shutdown()
    if ((fds[0].revents & POLLIN) == 0) continue;

    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      // Reap before counting: finished connections release their fd and
      // thread here, so a long-lived daemon serving short-lived clients
      // stays at O(live connections) — never EMFILE, never an unbounded
      // thread list.  Joins are cheap: `done` means the reader is returning.
      reap_finished_connections_locked();
      if (conns_.size() >= options_.max_connections) {
        // Connection-level shedding (distinct from the request ledger: no
        // frame was ever accepted on this socket).
        const std::string line = build_response_error(
            "", ErrorCode::kOverloaded, "connection limit reached", 100);
        write_all(fd, line.data(), line.size());
        write_all(fd, "\n", 1);
        ::close(fd);
        continue;
      }
      auto conn = std::make_shared<Connection>();
      conn->fd = fd;
      conns_.push_back(conn);
      conn->reader = std::thread([this, conn] { serve_connection(conn); });
    }
  }

  // Stop accepting (listener stays bound so late connectors get a refused /
  // reset rather than a hang), then drain: queued and in-flight requests
  // finish or cancel within the budget and their responses flush through the
  // still-open write sides.  Only then are the connections unblocked, joined,
  // and closed.
  const LedgerSnapshot ledger = server_.drain(options_.drain_budget_ms);
  teardown_connections();
  return ledger;
}

Client Client::connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  BFLY_REQUIRE(fd >= 0, errno_string("socket(AF_UNIX)"));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  BFLY_REQUIRE(path.size() < sizeof(addr.sun_path), "unix socket path too long");
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string message = errno_string("connect(unix)");
    ::close(fd);
    BFLY_REQUIRE(false, message);
  }
  return Client(fd);
}

Client Client::connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  BFLY_REQUIRE(fd >= 0, errno_string("socket(AF_INET)"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string message = errno_string("connect(tcp)");
    ::close(fd);
    BFLY_REQUIRE(false, message);
  }
  return Client(fd);
}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::send(const std::string& frame) {
  BFLY_REQUIRE(fd_ >= 0, "client socket is closed");
  BFLY_REQUIRE(write_all(fd_, frame.data(), frame.size()) && write_all(fd_, "\n", 1),
               errno_string("write"));
}

bool Client::read_line(std::string* line) {
  BFLY_REQUIRE(fd_ >= 0, "client socket is closed");
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t rc = ::read(fd_, chunk, sizeof(chunk));
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) return false;  // EOF: daemon gone
    buffer_.append(chunk, static_cast<std::size_t>(rc));
  }
}

std::string Client::call(const std::string& frame) {
  send(frame);
  std::string line;
  BFLY_REQUIRE(read_line(&line), "connection closed before a response arrived");
  return line;
}

}  // namespace bfly::serve
