// Socket transport for the bfly request server: a JSONL-over-stream-socket
// listener (Unix-domain by default, optionally TCP on 127.0.0.1) and the
// matching blocking client.
//
// Transport model:
//  * One stream connection carries any number of newline-delimited request
//    frames; responses come back one per line, each carrying the request's
//    "id" — responses are NOT ordered across pipelined requests (a cache hit
//    overtakes a cold compute), so clients must correlate by id.
//  * One reader thread per connection (bounded by max_connections; excess
//    connections are told "overloaded" and closed before reading a frame).
//    Responses may fire from any server thread; a per-connection write mutex
//    keeps response lines whole.  When a connection's reader exits (EOF,
//    error, oversized frame) the accept loop reaps it — joins the thread and
//    closes the fd — before admitting the next client, so a long-lived
//    daemon serving short-lived connections never accumulates dead fds or
//    threads (no EMFILE after N clients).
//  * A frame longer than max_frame_bytes without a newline answers
//    invalid_request and closes the connection (a client that hostile gets
//    no more service on that socket).
//  * shutdown() (signal-safe trigger: one byte down a self-pipe) stops the
//    accept loop, closes every connection's read side, drains the server
//    (finishing or cancelling in-flight work within the drain budget), and
//    returns from run() — the bflyd SIGTERM path.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"

namespace bfly::serve {

struct DaemonOptions {
  /// AF_UNIX listening socket path; takes precedence over tcp_port when
  /// non-empty.  An existing socket file at the path is replaced.
  std::string unix_socket_path;
  /// AF_INET port on 127.0.0.1; 0 = kernel-assigned (resolved port is
  /// available from Daemon::port() — how tests avoid port collisions).
  /// Ignored when unix_socket_path is set; -1 and no socket path is an
  /// error.
  int tcp_port = -1;
  /// Concurrent connections served; connection N+1 is answered with one
  /// "overloaded" line and closed.
  std::size_t max_connections = 128;
  /// Longest accepted request line (defense against an unbounded buffer).
  std::size_t max_frame_bytes = std::size_t{1} << 20;
  /// Drain budget handed to Server::drain on shutdown.
  u64 drain_budget_ms = 5'000;
  ServerOptions server;
};

class Daemon {
 public:
  /// Binds and listens (throws InvalidArgument on socket failure); the
  /// server starts immediately, the accept loop starts with run().
  explicit Daemon(DaemonOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Accept loop; blocks until shutdown() (from a signal handler path or
  /// another thread), then drains and returns the final ledger.
  LedgerSnapshot run();

  /// Signal-safe shutdown trigger (write(2) on a pipe; callable from a
  /// handler).  Idempotent.
  void shutdown();

  /// The resolved TCP port (after binding port 0), or -1 for Unix sockets.
  int port() const { return port_; }
  const std::string& socket_path() const { return options_.unix_socket_path; }
  Server& server() { return server_; }

  /// Connections currently tracked (live readers plus any finished ones the
  /// accept loop has not reaped yet).  Bounded by max_connections plus the
  /// handful that finished since the last accept — how the tests prove dead
  /// connections do not accumulate.
  std::size_t tracked_connections() const;

 private:
  struct Connection {
    int fd = -1;          // closed exactly once, after `reader` is joined
    std::mutex write_mu;  // also guards fd teardown against in-flight writes
    std::atomic<bool> dead{false};
    std::atomic<bool> done{false};  // reader exited; safe to join + close
    std::thread reader;
  };

  void serve_connection(const std::shared_ptr<Connection>& conn);
  /// Locked, whole-line write of `line` + '\n'; marks the connection dead on
  /// error (the response is then dropped — the peer is gone) and wakes the
  /// blocked reader so the connection reaps promptly.
  static void write_line(const std::shared_ptr<Connection>& conn, const std::string& line);
  /// Joins and closes every connection whose reader has exited, dropping it
  /// from conns_.  Caller holds conns_mu_.
  void reap_finished_connections_locked();
  /// Unblocks, joins, and closes every tracked connection (run() teardown and
  /// the destructor's never-ran-run() path).
  void teardown_connections();

  DaemonOptions options_;
  Server server_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: shutdown() -> poll() wakeup
  int port_ = -1;
  std::atomic<bool> shutdown_requested_{false};

  mutable std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
};

/// Blocking JSONL client for tests, tools, and bench_serve.
class Client {
 public:
  static Client connect_unix(const std::string& path);
  static Client connect_tcp(int port);
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one frame line (newline appended).  Throws InvalidArgument on a
  /// closed/failed socket.
  void send(const std::string& frame);
  /// Reads one response line (without the newline).  Returns false on EOF —
  /// the daemon died or closed the connection (how the kill -9 test observes
  /// in-flight requests vanishing).
  bool read_line(std::string* line);
  /// send + read_line for the single-outstanding-request case; throws on
  /// EOF.
  std::string call(const std::string& frame);

  void close();

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_ = -1;
  std::string buffer_;  // bytes read past the last returned line
};

}  // namespace bfly::serve
