#include "serve/cache.hpp"

#include <algorithm>
#include <fstream>
#include <utility>

#include "obs/json.hpp"
#include "util/check.hpp"
#include "util/fileio.hpp"

namespace bfly::serve {

ServeCache::ServeCache(std::string journal_path, CacheLimits limits)
    : journal_path_(std::move(journal_path)), limits_(limits) {
  BFLY_REQUIRE(limits_.max_entries >= 1, "cache max_entries must be >= 1");
  BFLY_REQUIRE(limits_.max_payload_bytes >= 1, "cache max_payload_bytes must be >= 1");
  BFLY_REQUIRE(limits_.journal_compact_bytes >= 1,
               "cache journal_compact_bytes must be >= 1");
  if (journal_path_.empty()) return;
  std::ifstream in(journal_path_);
  if (!in.is_open()) return;  // first run: journal does not exist yet
  std::string line;
  while (std::getline(in, line)) {
    journal_bytes_ += line.size() + 1;
    if (line.empty()) continue;
    // Torn-line tolerance, the checkpoint-journal contract: a kill -9 during
    // append leaves at most one unparseable tail line — skip and count, never
    // abort a restart over it.
    try {
      const json::Value doc = json::Value::parse(line);
      const json::Value* v = doc.find("v");
      const json::Value* key = doc.find("key");
      const json::Value* result = doc.find("result");
      if (v == nullptr || !v->is_number() ||
          static_cast<int>(v->as_double()) != kCacheJournalVersion || key == nullptr ||
          !key->is_string() || result == nullptr || !result->is_string()) {
        ++loaded_lines_skipped_;
        continue;
      }
      const std::string k = key->as_string();
      auto [it, inserted] = entries_.emplace(k, nullptr);
      if (inserted) it->second = std::make_shared<Entry>();
      if (it->second->ready) {
        // Last record wins: replace the payload and refresh recency.
        ready_bytes_ -= it->second->payload.size();
        lru_.splice(lru_.end(), lru_, it->second->lru_it);
        it->second->payload = result->as_string();
        ready_bytes_ += it->second->payload.size();
      } else {
        make_ready_locked(k, it->second.get(), result->as_string());
      }
      // Append order is the recency order the crash left behind: an
      // over-limit journal loads LRU-truncated, never over budget.
      evict_over_limits_locked(k);
    } catch (const InvalidArgument&) {
      ++loaded_lines_skipped_;
    }
  }
  loaded_entries_ = entries_.size();
}

Admission ServeCache::lookup_or_begin(const std::string& key,
                                      std::chrono::steady_clock::time_point deadline,
                                      std::string* payload_out,
                                      const CancelToken** token_out, WaitCallback on_done) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    Entry& entry = *it->second;
    if (entry.ready) {
      *payload_out = entry.payload;
      lru_.splice(lru_.end(), lru_, entry.lru_it);  // touched: now hottest
      return Admission::kHit;
    }
    // In flight: park the joiner and make sure the shared compute lives at
    // least as long as this request wants it to.
    entry.token.extend_deadline_until(deadline);
    entry.waiters.push_back(Waiter{deadline, std::move(on_done)});
    return Admission::kJoined;
  }
  auto entry = std::make_shared<Entry>();
  entry->token.extend_deadline_until(deadline);  // arms the fresh token
  *token_out = &entry->token;
  entries_.emplace(key, std::move(entry));
  return Admission::kOwner;
}

std::string ServeCache::encode_record(const std::string& key,
                                      const std::string& payload) const {
  std::string line = "{\"v\":";
  line += std::to_string(kCacheJournalVersion);
  line += ",\"key\":\"";
  line += json::escape(key);
  line += "\",\"result\":\"";
  line += json::escape(payload);
  line += "\"}";
  return line;
}

void ServeCache::make_ready_locked(const std::string& key, Entry* entry,
                                   const std::string& payload) {
  entry->ready = true;
  entry->payload = payload;
  entry->lru_it = lru_.insert(lru_.end(), key);
  ++ready_count_;
  ready_bytes_ += payload.size();
}

void ServeCache::evict_over_limits_locked(const std::string& protect_key) {
  while ((ready_count_ > limits_.max_entries || ready_bytes_ > limits_.max_payload_bytes) &&
         !lru_.empty()) {
    const std::string& coldest = lru_.front();
    if (coldest == protect_key) break;  // never evict the entry being served
    auto it = entries_.find(coldest);
    BFLY_CHECK(it != entries_.end() && it->second->ready, "LRU key without a ready entry");
    ready_bytes_ -= it->second->payload.size();
    --ready_count_;
    ++evicted_;
    entries_.erase(it);
    lru_.pop_front();
  }
}

void ServeCache::publish(const std::string& key, const std::string& payload) {
  // Durability BEFORE visibility: once any client can observe this payload
  // (directly or via a parked joiner), it is already fsynced — so "the
  // client saw a completed response" implies "a restart re-serves it
  // bit-identically".  journal_mu_ keeps appends whole without stalling
  // lookups behind the fsync.
  bool want_compaction = false;
  if (!journal_path_.empty()) {
    const std::string record = encode_record(key, payload);
    std::lock_guard<std::mutex> jlock(journal_mu_);
    util::append_line_durable(journal_path_, record);
    journal_bytes_ += record.size() + 1;
    want_compaction = journal_bytes_ > limits_.journal_compact_bytes;
  }
  std::vector<Waiter> waiters;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    BFLY_CHECK(it != entries_.end() && !it->second->ready,
               "publish without a pending entry");
    make_ready_locked(key, it->second.get(), payload);
    waiters.swap(it->second->waiters);
    evict_over_limits_locked(key);
  }
  for (Waiter& w : waiters) w.on_done(WaitResult::kReady, ErrorCode::kInternal, payload);
  // The journal accumulates superseded + evicted records between
  // compactions; crossing the threshold rewrites it down to live entries so
  // disk stays bounded alongside RSS (racing publishers may compact twice —
  // harmless, the second rewrite is already minimal).
  if (want_compaction) compact();
}

void ServeCache::fail(const std::string& key, ErrorCode code, const std::string& error) {
  std::vector<Waiter> waiters;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    BFLY_CHECK(it != entries_.end() && !it->second->ready, "fail without a pending entry");
    waiters.swap(it->second->waiters);
    entries_.erase(it);  // later identical requests compute afresh
  }
  for (Waiter& w : waiters) w.on_done(WaitResult::kFailed, code, error);
}

std::size_t ServeCache::cancel_pending() {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t signalled = 0;
  for (auto& [key, entry] : entries_) {
    if (entry->ready) continue;
    entry->token.request_cancel();
    ++signalled;
  }
  return signalled;
}

std::size_t ServeCache::expire_waiters(std::chrono::steady_clock::time_point now) {
  std::vector<WaitCallback> expired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [key, entry] : entries_) {
      if (entry->ready) continue;
      auto& waiters = entry->waiters;
      for (std::size_t i = 0; i < waiters.size();) {
        if (waiters[i].deadline <= now) {
          expired.push_back(std::move(waiters[i].on_done));
          waiters[i] = std::move(waiters.back());
          waiters.pop_back();
        } else {
          ++i;
        }
      }
    }
  }
  static const std::string kEmpty;
  for (WaitCallback& cb : expired) {
    cb(WaitResult::kExpired, ErrorCode::kDeadlineExceeded, kEmpty);
  }
  return expired.size();
}

std::chrono::steady_clock::time_point ServeCache::next_waiter_deadline() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto earliest = std::chrono::steady_clock::time_point::max();
  for (const auto& [key, entry] : entries_) {
    if (entry->ready) continue;
    for (const Waiter& w : entry->waiters) earliest = std::min(earliest, w.deadline);
  }
  return earliest;
}

void ServeCache::compact() const {
  if (journal_path_.empty()) return;
  std::string contents;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, entry] : entries_) {
      if (!entry->ready) continue;
      contents += encode_record(key, entry->payload);
      contents += '\n';
    }
  }
  std::lock_guard<std::mutex> jlock(journal_mu_);
  util::atomic_write_file(journal_path_, contents);
  journal_bytes_ = contents.size();
}

std::size_t ServeCache::ready_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ready_count_;
}

std::size_t ServeCache::ready_payload_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ready_bytes_;
}

std::size_t ServeCache::evicted_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

}  // namespace bfly::serve
