// The bfly request server: bounded admission, deadline-governed dispatch,
// single-flight memoization, and an exactly-conserved request ledger.
//
// Transport-free core of the bflyd daemon (serve/daemon.hpp wraps it in a
// socket listener; tests and bench_serve drive it in-process).  Every frame
// submitted is answered exactly once, and every answer lands in exactly one
// ledger bucket:
//
//     accepted == completed + cancelled + shed + failed
//
//   completed  success responses (cold computes, cache hits, control ops)
//   cancelled  deadline_exceeded (expired queued, mid-compute, or parked)
//   shed       overloaded (queue full) and shutting_down (drain)
//   failed     invalid_request (malformed / out-of-range) and internal
//
// The identity is exact — it holds after drain() by construction, and
// Server verifies it with BFLY_CHECK.  The same counts are mirrored into
// the obs registry (serve.* counters, serve.latency_us histogram) when one
// is installed; the Server's own atomics are the source of truth, so the
// ledger works with no registry at all.
//
// Robustness model:
//  * Admission is bounded (queue_depth): past it, requests are shed
//    deterministically with a structured "overloaded" error carrying a
//    retry_after_ms hint (occupancy x observed service time) — never
//    queued-and-forgotten.
//  * Every compute carries a deadline (its own, or the server default) on an
//    exec::CancelToken; the engines poll, so an expired request stops within
//    one poll batch and answers deadline_exceeded.  A reaper thread expires
//    requests still waiting in the queue or parked on a coalesced compute,
//    so expiry never waits for a dispatcher.
//  * Identical concurrent requests coalesce (serve/cache.hpp): one compute,
//    many responses, each joiner extending (never shortening) the shared
//    deadline.
//  * drain() stops admission, finishes or cancels everything within a
//    budget, fires every outstanding callback, compacts the cache journal,
//    and leaves the ledger conserved.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"

namespace bfly::serve {

struct ServerOptions {
  /// Dispatcher threads = maximum concurrently *executing* computes.  Each
  /// compute may additionally fan out onto the shared ThreadPool
  /// (engine_threads).
  std::size_t max_inflight = 4;
  /// Bounded admission queue depth; compute requests beyond it are shed.
  std::size_t queue_depth = 256;
  /// Deadline applied to requests that carry none.  Must be > 0.
  u64 default_deadline_ms = 10'000;
  /// Hard ceiling on client-requested deadlines (larger values are clamped,
  /// not rejected — a long deadline is a preference, not a contract).
  u64 max_deadline_ms = 300'000;
  /// Cache journal path; empty = memory-only (no crash recovery).
  std::string cache_path;
  /// Memoization retention bounds: LRU entry/byte caps and the journal size
  /// that triggers automatic compaction (see serve/cache.hpp).
  CacheLimits cache_limits;
  /// Engine parallelism per compute (0 = pool default).
  std::size_t engine_threads = 0;
};

/// Point-in-time ledger counts (monotonic; read with relaxed atomics).
struct LedgerSnapshot {
  u64 accepted = 0;
  u64 completed = 0;
  u64 cancelled = 0;
  u64 shed = 0;
  u64 failed = 0;
  u64 cache_hits = 0;   ///< answered from a ready cache entry
  u64 cache_misses = 0; ///< became the owner of a cold compute
  u64 coalesced = 0;    ///< parked behind an identical in-flight compute

  /// The conservation identity.  Transiently false while requests are in
  /// flight (accepted leads its terminal bucket); exact once idle/drained.
  bool conserved() const { return accepted == completed + cancelled + shed + failed; }
};

/// Fires exactly once per submitted frame, from an arbitrary thread (the
/// submitter's for inline answers, a dispatcher's or the reaper's
/// otherwise), with one complete JSONL response line (no trailing newline).
using ResponseCallback = std::function<void(std::string line)>;

class Server {
 public:
  explicit Server(ServerOptions options);
  /// Drains with a zero budget if drain() was never called (cancels
  /// everything in flight; all callbacks still fire).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Submits one raw frame (hostile input welcome: non-JSON, wrong types,
  /// unknown ops all answer invalid_request).  The callback is retained
  /// until the request reaches a terminal state; it must not re-enter the
  /// Server (post, don't recurse) and must not throw.
  void submit_frame(const std::string& frame, ResponseCallback respond);

  /// Graceful drain: closes admission (new frames answer shutting_down),
  /// lets queued + in-flight work finish for up to `budget_ms`, then cancels
  /// the remainder (in-flight computes via their tokens, still-queued jobs
  /// with shutting_down), joins all threads, fires every outstanding
  /// callback, verifies ledger conservation, and compacts the cache journal.
  /// Idempotent; returns the final ledger.
  LedgerSnapshot drain(u64 budget_ms);

  LedgerSnapshot ledger() const;
  /// The "stats" op's result document: ledger, queue/cache occupancy, and
  /// configuration.  Volatile server state — never cached.
  json::Value stats_json() const;

  const ServerOptions& options() const { return options_; }
  const ServeCache& cache() const { return cache_; }

 private:
  struct Job {
    Request request;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline;
    ResponseCallback respond;
  };

  enum class Bucket { kCompleted, kCancelled, kShed, kFailed };
  static Bucket bucket_for(ErrorCode code);

  void finish(const ResponseCallback& respond, Bucket bucket,
              std::chrono::steady_clock::time_point enqueued, std::string line);
  void finish_error(const Job& job, ErrorCode code, std::string_view message,
                    u64 retry_after_ms = 0);
  u64 retry_hint_ms(std::size_t queue_len) const;
  std::chrono::steady_clock::time_point deadline_for(const Request& request,
                                                     std::chrono::steady_clock::time_point now)
      const;

  void dispatcher_loop();
  void reaper_loop();
  /// One popped job: expiry check, then the cache gate, then the compute.
  /// `shed_job` = the drain budget expired while this job was queued.
  void process(Job job, bool shed_job);
  void owner_compute(Job job, const std::string& key, const CancelToken* token,
                     bool store);
  /// Removes queued jobs past their deadline and answers them; returns the
  /// number expired.  Called by the reaper so expiry latency never depends
  /// on dispatcher availability.
  std::size_t expire_queued(std::chrono::steady_clock::time_point now);

  const ServerOptions options_;
  ServeCache cache_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;       // admission closed (drain started)
  bool drain_expired_ = false;  // drain budget exhausted: shed instead of compute
  bool quit_ = false;           // dispatchers may exit when the queue is empty
  std::size_t executing_ = 0;   // jobs popped and not yet terminal

  std::mutex drain_mu_;  // serializes drain() callers (user drain vs dtor)
  std::mutex reaper_mu_;
  std::condition_variable reaper_cv_;
  bool reaper_quit_ = false;

  std::vector<std::thread> dispatchers_;
  std::thread reaper_;
  bool drained_ = false;

  // Ledger (source of truth; obs mirrors below may be null).
  std::atomic<u64> accepted_{0};
  std::atomic<u64> completed_{0};
  std::atomic<u64> cancelled_{0};
  std::atomic<u64> shed_{0};
  std::atomic<u64> failed_{0};
  std::atomic<u64> cache_hits_{0};
  std::atomic<u64> cache_misses_{0};
  std::atomic<u64> coalesced_{0};

  /// EMA of compute service time, feeding the overload retry hint.  Only
  /// a hint: updated racily (relaxed), read racily, deliberately.
  std::atomic<double> service_ema_us_{1000.0};

  const std::chrono::steady_clock::time_point started_ = std::chrono::steady_clock::now();

  obs::Counter* c_accepted_;
  obs::Counter* c_completed_;
  obs::Counter* c_cancelled_;
  obs::Counter* c_shed_;
  obs::Counter* c_failed_;
  obs::Counter* c_hits_;
  obs::Counter* c_misses_;
  obs::Counter* c_coalesced_;
  obs::Gauge* g_queue_len_;
  obs::Histogram* h_latency_us_;
};

}  // namespace bfly::serve
