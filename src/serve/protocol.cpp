#include "serve/protocol.hpp"

#include <cmath>
#include <initializer_list>
#include <string>

#include "exec/checkpoint.hpp"
#include "layout/butterfly_layout.hpp"
#include "packaging/hierarchical.hpp"
#include "routing/routing.hpp"
#include "util/check.hpp"
#include "util/fileio.hpp"

namespace bfly::serve {

namespace {

// Doubles are exact integers up to 2^53; the JSON model stores numbers as
// doubles, so integer fields above that cannot round-trip and are rejected.
constexpr double kMaxExactInteger = 9007199254740992.0;  // 2^53

std::string field_error(std::string_view key, std::string_view what) {
  return "field \"" + std::string(key) + "\" " + std::string(what);
}

u64 get_u64(const json::Value& doc, std::string_view key, u64 min_value, u64 max_value,
            u64 fallback) {
  const json::Value* v = doc.find(key);
  if (v == nullptr) return fallback;
  BFLY_REQUIRE(v->is_number(), field_error(key, "must be a number"));
  const double d = v->as_double();
  BFLY_REQUIRE(d >= 0.0 && d <= kMaxExactInteger && d == std::floor(d),
               field_error(key, "must be a non-negative integer"));
  const u64 value = static_cast<u64>(d);
  BFLY_REQUIRE(value >= min_value && value <= max_value,
               field_error(key, "is out of range [" + std::to_string(min_value) + ", " +
                                    std::to_string(max_value) + "]"));
  return value;
}

double get_unit_double(const json::Value& doc, std::string_view key) {
  const json::Value* v = doc.find(key);
  BFLY_REQUIRE(v != nullptr, field_error(key, "is required"));
  BFLY_REQUIRE(v->is_number(), field_error(key, "must be a number"));
  const double d = v->as_double();
  BFLY_REQUIRE(std::isfinite(d) && d >= 0.0 && d <= 1.0,
               field_error(key, "must be a finite value in [0, 1]"));
  return d;
}

// Frames are hostile input: a key we did not ask for is a malformed request,
// not something to ignore — silently dropped fields hide client bugs (a
// misspelled "cycles" would otherwise run with the default and cache the
// wrong result under the right-looking request).
void require_known_fields(const json::Value& doc,
                          std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, value] : doc.members()) {
    bool known = false;
    for (const std::string_view a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    BFLY_REQUIRE(known, "unknown field \"" + key + "\" for this op");
  }
}

}  // namespace

const char* to_string(Op op) {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kStats: return "stats";
    case Op::kLayout: return "layout";
    case Op::kPackaging: return "packaging";
    case Op::kCensus: return "census";
    case Op::kSweep: return "sweep";
  }
  return "?";
}

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidRequest: return "invalid_request";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kInternal: return "internal";
  }
  return "?";
}

Request parse_request(const json::Value& doc) {
  BFLY_REQUIRE(doc.is_object(), "request frame must be a JSON object");
  const json::Value* op = doc.find("op");
  BFLY_REQUIRE(op != nullptr && op->is_string(), "field \"op\" (string) is required");

  Request request;
  const std::string& name = op->as_string();
  if (name == "ping") {
    request.op = Op::kPing;
  } else if (name == "stats") {
    request.op = Op::kStats;
  } else if (name == "layout") {
    request.op = Op::kLayout;
  } else if (name == "packaging") {
    request.op = Op::kPackaging;
  } else if (name == "census") {
    request.op = Op::kCensus;
  } else if (name == "sweep") {
    request.op = Op::kSweep;
  } else {
    BFLY_REQUIRE(false, "unknown op \"" + name + "\"");
  }

  if (const json::Value* id = doc.find("id"); id != nullptr) {
    BFLY_REQUIRE(id->is_string(), field_error("id", "must be a string"));
    request.id = id->as_string();
  }
  request.deadline_ms = get_u64(doc, "deadline_ms", 1, u64{1} << 32, 0);
  if (const json::Value* nc = doc.find("no_cache"); nc != nullptr) {
    BFLY_REQUIRE(nc->type() == json::Value::Type::kBool,
                 field_error("no_cache", "must be a boolean"));
    request.no_cache = nc->as_bool();
  }

  switch (request.op) {
    case Op::kPing:
    case Op::kStats:
      require_known_fields(doc, {"op", "id", "deadline_ms", "no_cache"});
      break;
    case Op::kLayout:
      require_known_fields(doc, {"op", "id", "deadline_ms", "no_cache", "n", "layers"});
      request.n = static_cast<int>(get_u64(doc, "n", 3, 16, 0));
      BFLY_REQUIRE(request.n != 0, field_error("n", "is required"));
      request.layers = static_cast<int>(get_u64(doc, "layers", 2, 16, 2));
      break;
    case Op::kPackaging:
      require_known_fields(doc, {"op", "id", "deadline_ms", "no_cache", "n",
                                 "max_offchip_links", "chip_side"});
      request.n = static_cast<int>(get_u64(doc, "n", 1, 16, 0));
      BFLY_REQUIRE(request.n != 0, field_error("n", "is required"));
      request.max_offchip_links = get_u64(doc, "max_offchip_links", 8, 4096, 64);
      request.chip_side = static_cast<i64>(get_u64(doc, "chip_side", 4, 1000, 20));
      break;
    case Op::kCensus:
      require_known_fields(doc, {"op", "id", "deadline_ms", "no_cache", "n", "packets", "seed"});
      request.n = static_cast<int>(get_u64(doc, "n", 1, 14, 0));
      BFLY_REQUIRE(request.n != 0, field_error("n", "is required"));
      request.packets = get_u64(doc, "packets", 1, kMaxCensusPackets, 0);
      BFLY_REQUIRE(request.packets != 0, field_error("packets", "is required"));
      request.seed = get_u64(doc, "seed", 0, ~u64{0} >> 11, 1);
      break;
    case Op::kSweep:
      require_known_fields(doc, {"op", "id", "deadline_ms", "no_cache", "n", "offered_load",
                                 "cycles", "seed", "warmup_cycles", "queue_capacity",
                                 "shard_count"});
      request.n = static_cast<int>(get_u64(doc, "n", 1, 14, 0));
      BFLY_REQUIRE(request.n != 0, field_error("n", "is required"));
      request.offered_load = get_unit_double(doc, "offered_load");
      request.cycles = get_u64(doc, "cycles", 1, kMaxSweepCycles, 0);
      BFLY_REQUIRE(request.cycles != 0, field_error("cycles", "is required"));
      request.seed = get_u64(doc, "seed", 0, ~u64{0} >> 11, 1);
      request.warmup_cycles = get_u64(doc, "warmup_cycles", 0, kMaxSweepCycles, 0);
      BFLY_REQUIRE(request.warmup_cycles < request.cycles,
                   field_error("warmup_cycles", "must be < cycles"));
      request.queue_capacity = get_u64(doc, "queue_capacity", 0, kMaxSweepQueueCapacity, 0);
      request.shard_count = get_u64(doc, "shard_count", 0, kMaxSweepShards, 0);
      BFLY_REQUIRE(request.shard_count == 0 ||
                       (request.shard_count & (request.shard_count - 1)) == 0,
                   field_error("shard_count", "must be 0 or a power of two"));
      // Defense in depth: the library validator owns the full rule set (and
      // may be stricter than the field bounds above compose to).
      validate_sweep_point(to_sweep_point(request), 0);
      break;
  }
  return request;
}

Request parse_request_line(std::string_view line) {
  return parse_request(json::Value::parse(line));
}

SweepPoint to_sweep_point(const Request& request) {
  SweepPoint point;
  point.n = request.n;
  point.offered_load = request.offered_load;
  point.cycles = request.cycles;
  point.seed = request.seed;
  point.warmup_cycles = request.warmup_cycles;
  point.queue_capacity = request.queue_capacity;
  point.shard_count = request.shard_count;
  return point;
}

std::string request_key(const Request& request) {
  BFLY_REQUIRE(request.is_compute(), "control ops have no content key");
  if (request.op == Op::kSweep) {
    // Shared derivation with the checkpoint layer: a served sweep point and a
    // checkpointed one with the same parameters answer to the same 16 hex.
    return exec::sweep_point_key(to_sweep_point(request));
  }
  util::Fnv1a64 h;
  h.update(std::string_view(to_string(request.op)));
  h.update(static_cast<u64>(request.n));
  switch (request.op) {
    case Op::kLayout:
      h.update(static_cast<u64>(request.layers));
      break;
    case Op::kPackaging:
      h.update(request.max_offchip_links);
      h.update(static_cast<u64>(request.chip_side));
      break;
    case Op::kCensus:
      h.update(request.packets);
      h.update(request.seed);
      break;
    default:
      break;
  }
  return util::to_hex16(h.digest());
}

json::Value execute_request(const Request& request, const CancelToken* cancel,
                            std::size_t engine_threads) {
  json::Value result = json::Value::object();
  switch (request.op) {
    case Op::kPing:
      result.set("pong", json::Value::boolean(true));
      return result;
    case Op::kStats:
      BFLY_CHECK(false, "stats is answered by the server, not executed");
      break;
    case Op::kLayout: {
      ButterflyLayoutOptions options;
      options.layers = request.layers;
      const ButterflyLayoutPlan plan(ButterflyLayoutPlan::choose_parameters(request.n),
                                     options);
      const LayoutMetrics m = plan.metrics();
      result.set("n", json::Value::number(request.n));
      result.set("layers", json::Value::number(request.layers));
      result.set("width", json::Value::number(m.width));
      result.set("height", json::Value::number(m.height));
      result.set("area", json::Value::number(m.area));
      result.set("max_wire_length", json::Value::number(m.max_wire_length));
      result.set("total_wire_length", json::Value::number(m.total_wire_length));
      result.set("num_layers", json::Value::number(m.num_layers));
      result.set("volume", json::Value::number(m.volume));
      result.set("num_nodes", json::Value::number(m.num_nodes));
      result.set("num_wires", json::Value::number(m.num_wires));
      return result;
    }
    case Op::kPackaging: {
      ChipConstraints constraints;
      constraints.max_offchip_links = request.max_offchip_links;
      constraints.chip_side = request.chip_side;
      const HierarchicalPlan plan = plan_hierarchical(request.n, constraints);
      result.set("n", json::Value::number(plan.n));
      result.set("rows_log2", json::Value::number(plan.rows_log2));
      result.set("nodes_per_chip", json::Value::number(plan.nodes_per_chip));
      result.set("num_chips", json::Value::number(plan.num_chips));
      result.set("offchip_links_per_chip", json::Value::number(plan.offchip_links_per_chip));
      result.set("grid_rows", json::Value::number(plan.grid_rows));
      result.set("grid_cols", json::Value::number(plan.grid_cols));
      result.set("logical_tracks_per_channel",
                 json::Value::number(plan.logical_tracks_per_channel));
      result.set("chip_side", json::Value::number(plan.chip_side));
      result.set("terminals_per_edge", json::Value::number(plan.terminals_per_edge));
      json::Value boards = json::Value::object();
      for (const int layers : {2, 4, 8}) {
        json::Value b = json::Value::object();
        b.set("board_side", json::Value::number(plan.board_side(layers)));
        b.set("board_area", json::Value::number(plan.board_area(layers)));
        b.set("max_board_wire", json::Value::number(plan.max_board_wire(layers)));
        boards.set("layers_" + std::to_string(layers), std::move(b));
      }
      result.set("boards", std::move(boards));
      result.set("naive_chips", json::Value::number(
                                    naive_chip_count(plan.n, request.max_offchip_links)));
      return result;
    }
    case Op::kCensus: {
      const LoadCensus census = measure_link_loads(request.n, request.packets, request.seed,
                                                   engine_threads, false, cancel);
      result.set("n", json::Value::number(request.n));
      result.set("packets", json::Value::number(census.packets));
      result.set("max_link_load", json::Value::number(census.max_link_load));
      result.set("avg_link_load", json::Value::number(census.avg_link_load));
      result.set("imbalance", json::Value::number(census.imbalance));
      result.set("avg_distance", json::Value::number(census.avg_distance));
      return result;
    }
    case Op::kSweep: {
      const SweepPoint point = to_sweep_point(request);
      validate_sweep_point(point, 0);
      const SweepOutcome outcome = run_sweep_point(point, cancel, nullptr, nullptr);
      const SaturationPoint& p = outcome.point;
      result.set("n", json::Value::number(request.n));
      result.set("offered_load", json::Value::number(p.offered_load));
      result.set("throughput", json::Value::number(p.throughput));
      result.set("avg_latency", json::Value::number(p.avg_latency));
      result.set("per_node_injection", json::Value::number(p.per_node_injection));
      result.set("delivered", json::Value::number(p.delivered));
      result.set("max_queue", json::Value::number(p.max_queue));
      result.set("dropped_queue_full", json::Value::number(p.dropped_queue_full));
      return result;
    }
  }
  BFLY_CHECK(false, "unreachable op");
}

std::string build_response_ok(std::string_view id, std::string_view key, bool cached,
                              std::string_view result_text) {
  std::string out;
  out.reserve(result_text.size() + id.size() + 64);
  out += "{\"id\":\"";
  out += json::escape(id);
  out += "\",\"ok\":true,\"key\":\"";
  out += key;
  out += "\",\"cached\":";
  out += cached ? "true" : "false";
  out += ",\"result\":";
  out += result_text;
  out += "}";
  return out;
}

std::string build_response_error(std::string_view id, ErrorCode code,
                                 std::string_view message, u64 retry_after_ms) {
  std::string out;
  out.reserve(message.size() + id.size() + 96);
  out += "{\"id\":\"";
  out += json::escape(id);
  out += "\",\"ok\":false,\"error\":{\"code\":\"";
  out += to_string(code);
  out += "\",\"message\":\"";
  out += json::escape(message);
  out += "\"";
  if (retry_after_ms > 0) {
    out += ",\"retry_after_ms\":";
    out += std::to_string(retry_after_ms);
  }
  out += "}}";
  return out;
}

}  // namespace bfly::serve
