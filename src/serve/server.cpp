#include "serve/server.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace bfly::serve {

namespace {
using Clock = std::chrono::steady_clock;

double us_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}
}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_path, options_.cache_limits),
      c_accepted_(obs::get_counter("serve.accepted")),
      c_completed_(obs::get_counter("serve.completed")),
      c_cancelled_(obs::get_counter("serve.cancelled")),
      c_shed_(obs::get_counter("serve.shed")),
      c_failed_(obs::get_counter("serve.failed")),
      c_hits_(obs::get_counter("serve.cache_hits")),
      c_misses_(obs::get_counter("serve.cache_misses")),
      c_coalesced_(obs::get_counter("serve.coalesced")),
      g_queue_len_(obs::get_gauge("serve.queue_len")),
      h_latency_us_(obs::get_histogram(
          "serve.latency_us", obs::Histogram::exponential_bounds(10.0, 2.0, 24))) {
  BFLY_REQUIRE(options_.max_inflight >= 1, "max_inflight must be >= 1");
  BFLY_REQUIRE(options_.queue_depth >= 1, "queue_depth must be >= 1");
  BFLY_REQUIRE(options_.default_deadline_ms > 0, "default_deadline_ms must be > 0");
  BFLY_REQUIRE(options_.max_deadline_ms >= options_.default_deadline_ms,
               "max_deadline_ms must cover default_deadline_ms");
  dispatchers_.reserve(options_.max_inflight);
  for (std::size_t i = 0; i < options_.max_inflight; ++i) {
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
  }
  reaper_ = std::thread([this] { reaper_loop(); });
}

Server::~Server() { drain(0); }

Server::Bucket Server::bucket_for(ErrorCode code) {
  switch (code) {
    case ErrorCode::kDeadlineExceeded: return Bucket::kCancelled;
    case ErrorCode::kOverloaded:
    case ErrorCode::kShuttingDown: return Bucket::kShed;
    case ErrorCode::kInvalidRequest:
    case ErrorCode::kInternal: return Bucket::kFailed;
  }
  return Bucket::kFailed;
}

void Server::finish(const ResponseCallback& respond, Bucket bucket,
                    Clock::time_point enqueued, std::string line) {
  switch (bucket) {
    case Bucket::kCompleted:
      completed_.fetch_add(1, std::memory_order_relaxed);
      obs::add(c_completed_);
      break;
    case Bucket::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      obs::add(c_cancelled_);
      break;
    case Bucket::kShed:
      shed_.fetch_add(1, std::memory_order_relaxed);
      obs::add(c_shed_);
      break;
    case Bucket::kFailed:
      failed_.fetch_add(1, std::memory_order_relaxed);
      obs::add(c_failed_);
      break;
  }
  obs::observe(h_latency_us_, us_between(enqueued, Clock::now()));
  respond(std::move(line));
}

void Server::finish_error(const Job& job, ErrorCode code, std::string_view message,
                          u64 retry_after_ms) {
  finish(job.respond, bucket_for(code), job.enqueued,
         build_response_error(job.request.id, code, message, retry_after_ms));
}

u64 Server::retry_hint_ms(std::size_t queue_len) const {
  // Occupancy x observed service time: roughly when a queue slot should
  // free up if the caller waits its turn out.  A hint, not a reservation.
  const double ema_us = service_ema_us_.load(std::memory_order_relaxed);
  const double slots = static_cast<double>(options_.max_inflight);
  const double hint_ms =
      (static_cast<double>(queue_len) / slots + 1.0) * ema_us / 1000.0;
  return static_cast<u64>(std::clamp(hint_ms, 1.0, 60'000.0));
}

Clock::time_point Server::deadline_for(const Request& request, Clock::time_point now) const {
  const u64 ms = request.deadline_ms == 0
                     ? options_.default_deadline_ms
                     : std::min(request.deadline_ms, options_.max_deadline_ms);
  return now + std::chrono::milliseconds(ms);
}

void Server::submit_frame(const std::string& frame, ResponseCallback respond) {
  accepted_.fetch_add(1, std::memory_order_relaxed);
  obs::add(c_accepted_);
  const Clock::time_point now = Clock::now();

  // Hostile input boundary: everything up to a validated Request can fail,
  // and all of it answers a structured invalid_request.  The id is fished
  // out first on a best-effort basis so even a bad frame's error can be
  // correlated by the client.
  std::string id;
  Request request;
  try {
    const json::Value doc = json::Value::parse(frame);
    if (doc.is_object()) {
      if (const json::Value* v = doc.find("id"); v != nullptr && v->is_string()) {
        id = v->as_string();
      }
    }
    request = parse_request(doc);
  } catch (const InvalidArgument& e) {
    finish(respond, Bucket::kFailed, now,
           build_response_error(id, ErrorCode::kInvalidRequest, e.what()));
    return;
  }

  // Control ops: answered inline, admission-exempt (they are how drained or
  // overloaded servers stay observable).
  if (request.op == Op::kPing) {
    finish(respond, Bucket::kCompleted, now,
           build_response_ok(request.id, "", false, "{\"pong\":true}"));
    return;
  }
  if (request.op == Op::kStats) {
    finish(respond, Bucket::kCompleted, now,
           build_response_ok(request.id, "", false, stats_json().dump()));
    return;
  }

  Job job;
  job.enqueued = now;
  job.deadline = deadline_for(request, now);
  job.request = std::move(request);
  job.respond = std::move(respond);

  ErrorCode shed_code = ErrorCode::kInternal;
  u64 hint = 0;
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    if (stopping_) {
      shed_code = ErrorCode::kShuttingDown;
    } else if (queue_.size() >= options_.queue_depth) {
      // Deterministic load shedding: admission depends only on queue
      // occupancy, so at a given queue state every request sees the same
      // verdict — no random early drop, no priority inversion.
      shed_code = ErrorCode::kOverloaded;
      hint = retry_hint_ms(queue_.size());
    } else {
      queue_.push_back(std::move(job));
      obs::set(g_queue_len_, static_cast<double>(queue_.size()));
      lock.unlock();
      queue_cv_.notify_one();
      return;
    }
  }
  if (shed_code == ErrorCode::kShuttingDown) {
    finish_error(job, shed_code, "server is draining");
  } else {
    finish_error(job, shed_code, "admission queue is full", hint);
  }
}

void Server::dispatcher_loop() {
  while (true) {
    Job job;
    bool shed_job = false;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return !queue_.empty() || quit_; });
      if (queue_.empty()) break;  // quit_ with nothing left to do
      job = std::move(queue_.front());
      queue_.pop_front();
      ++executing_;
      shed_job = drain_expired_;
      obs::set(g_queue_len_, static_cast<double>(queue_.size()));
    }
    process(std::move(job), shed_job);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --executing_;
    }
    queue_cv_.notify_all();  // drain() waits on executing_ == 0
  }
}

void Server::process(Job job, bool shed_job) {
  if (shed_job) {
    finish_error(job, ErrorCode::kShuttingDown, "server drain budget exhausted");
    return;
  }
  if (Clock::now() >= job.deadline) {
    // Expired while queued: answered, never computed — an expired request
    // costs a dispatcher nothing beyond this check.
    finish_error(job, ErrorCode::kDeadlineExceeded, "deadline expired while queued");
    return;
  }

  const std::string key = request_key(job.request);
  if (job.request.no_cache) {
    CancelToken token;
    token.extend_deadline_until(job.deadline);
    owner_compute(std::move(job), key, &token, /*store=*/false);
    return;
  }

  // The joiner resolution path.  Captures copies (the Job dies when this
  // dispatcher moves on); fired exactly once by publish / fail / the reaper.
  const ResponseCallback respond = job.respond;
  const std::string request_id = job.request.id;
  const Clock::time_point enqueued = job.enqueued;
  WaitCallback on_done = [this, respond, request_id, key, enqueued](
                             WaitResult result, ErrorCode code, const std::string& body) {
    switch (result) {
      case WaitResult::kReady:
        finish(respond, Bucket::kCompleted, enqueued,
               build_response_ok(request_id, key, /*cached=*/true, body));
        break;
      case WaitResult::kFailed:
        finish(respond, bucket_for(code), enqueued,
               build_response_error(request_id, code, body));
        break;
      case WaitResult::kExpired:
        finish(respond, Bucket::kCancelled, enqueued,
               build_response_error(request_id, ErrorCode::kDeadlineExceeded,
                                    "deadline expired awaiting a coalesced compute"));
        break;
    }
  };

  std::string payload;
  const CancelToken* token = nullptr;
  switch (cache_.lookup_or_begin(key, job.deadline, &payload, &token, std::move(on_done))) {
    case Admission::kHit:
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      obs::add(c_hits_);
      finish(respond, Bucket::kCompleted, enqueued,
             build_response_ok(request_id, key, /*cached=*/true, payload));
      break;
    case Admission::kJoined:
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      obs::add(c_coalesced_);
      break;  // parked; on_done owns the response
    case Admission::kOwner:
      cache_misses_.fetch_add(1, std::memory_order_relaxed);
      obs::add(c_misses_);
      owner_compute(std::move(job), key, token, /*store=*/true);
      break;
  }
}

void Server::owner_compute(Job job, const std::string& key, const CancelToken* token,
                           bool store) {
  const Clock::time_point t0 = Clock::now();
  try {
    const json::Value result = execute_request(job.request, token, options_.engine_threads);
    if (CancelToken::cancelled(token)) {
      // The engines return partial results when the token trips mid-run;
      // "completed normally" and "stopped early" are indistinguishable here,
      // so a tripped token always discards (determinism over salvage).
      if (store) {
        cache_.fail(key, ErrorCode::kDeadlineExceeded, "deadline expired during compute");
      }
      finish_error(job, ErrorCode::kDeadlineExceeded, "deadline expired during compute");
      return;
    }
    const std::string text = result.dump();
    if (store) cache_.publish(key, text);
    const double us = us_between(t0, Clock::now());
    const double prev = service_ema_us_.load(std::memory_order_relaxed);
    service_ema_us_.store(prev + 0.2 * (us - prev), std::memory_order_relaxed);
    if (Clock::now() >= job.deadline) {
      // Joiners may have extended the shared token past this owner's own
      // deadline, so the compute legitimately outlived it.  The result is
      // published above for the joiners (and the cache), but the owner's own
      // contract stands: an expired request answers deadline_exceeded.
      finish_error(job, ErrorCode::kDeadlineExceeded, "deadline expired during compute");
      return;
    }
    finish(job.respond, Bucket::kCompleted, job.enqueued,
           build_response_ok(job.request.id, key, /*cached=*/false, text));
  } catch (const InvalidArgument& e) {
    if (store) cache_.fail(key, ErrorCode::kInvalidRequest, e.what());
    finish_error(job, ErrorCode::kInvalidRequest, e.what());
  } catch (const std::exception& e) {
    if (store) cache_.fail(key, ErrorCode::kInternal, e.what());
    finish_error(job, ErrorCode::kInternal, e.what());
  }
}

std::size_t Server::expire_queued(Clock::time_point now) {
  std::vector<Job> expired;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (std::size_t i = 0; i < queue_.size();) {
      if (queue_[i].deadline <= now) {
        expired.push_back(std::move(queue_[i]));
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    if (!expired.empty()) {
      obs::set(g_queue_len_, static_cast<double>(queue_.size()));
    }
  }
  for (const Job& job : expired) {
    finish_error(job, ErrorCode::kDeadlineExceeded, "deadline expired while queued");
  }
  return expired.size();
}

void Server::reaper_loop() {
  // Fixed short tick: deadline expiry for queued jobs and parked joiners
  // lands within ~one tick of the deadline, independent of dispatcher
  // availability — the "expired requests never stall behind a busy queue"
  // liveness bound (engine-side cancellation is the token's job).
  constexpr auto kTick = std::chrono::milliseconds(5);
  while (true) {
    {
      std::unique_lock<std::mutex> lock(reaper_mu_);
      if (reaper_quit_) break;
      reaper_cv_.wait_for(lock, kTick);
      if (reaper_quit_) break;
    }
    const Clock::time_point now = Clock::now();
    expire_queued(now);
    cache_.expire_waiters(now);
  }
}

LedgerSnapshot Server::drain(u64 budget_ms) {
  // One drain at a time (e.g. an explicit drain racing the destructor's).
  std::lock_guard<std::mutex> drain_lock(drain_mu_);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (drained_) return ledger();
    stopping_ = true;
  }
  queue_cv_.notify_all();

  const Clock::time_point budget_end = Clock::now() + std::chrono::milliseconds(budget_ms);
  bool expired = false;
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    queue_cv_.wait_until(lock, budget_end,
                         [this] { return queue_.empty() && executing_ == 0; });
    if (!queue_.empty() || executing_ != 0) {
      drain_expired_ = true;  // dispatchers shed whatever they pop next
      expired = true;
    }
  }
  if (expired) {
    // Raise the flag on every in-flight compute; the engines observe it at
    // their poll points and the owners answer deadline_exceeded.
    cache_.cancel_pending();
    queue_cv_.notify_all();
  }
  {
    // Second wait is unbounded but finite: the queue only sheds now, and
    // cancelled engines return within one poll batch (computes that never
    // poll are bounded by the parse-time parameter caps).
    std::unique_lock<std::mutex> lock(queue_mu_);
    queue_cv_.wait(lock, [this] { return queue_.empty() && executing_ == 0; });
    quit_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : dispatchers_) t.join();
  dispatchers_.clear();

  // Reaper last: parked joiners may still need expiry while owners wind
  // down.  By this point every pending entry has resolved (each had exactly
  // one owner, and all owners finished above), so no waiter can be left.
  {
    std::lock_guard<std::mutex> lock(reaper_mu_);
    reaper_quit_ = true;
  }
  reaper_cv_.notify_all();
  if (reaper_.joinable()) reaper_.join();

  cache_.compact();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    drained_ = true;
  }

  const LedgerSnapshot snapshot = ledger();
  BFLY_CHECK(snapshot.conserved(),
             "request ledger not conserved after drain: accepted != "
             "completed + cancelled + shed + failed");
  return snapshot;
}

LedgerSnapshot Server::ledger() const {
  LedgerSnapshot s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  return s;
}

json::Value Server::stats_json() const {
  const LedgerSnapshot s = ledger();
  std::size_t queue_len = 0;
  std::size_t executing = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_len = queue_.size();
    executing = executing_;
  }
  json::Value doc = json::Value::object();
  doc.set("uptime_ms", json::Value::number(us_between(started_, Clock::now()) / 1000.0));
  doc.set("accepted", json::Value::number(s.accepted));
  doc.set("completed", json::Value::number(s.completed));
  doc.set("cancelled", json::Value::number(s.cancelled));
  doc.set("shed", json::Value::number(s.shed));
  doc.set("failed", json::Value::number(s.failed));
  doc.set("cache_hits", json::Value::number(s.cache_hits));
  doc.set("cache_misses", json::Value::number(s.cache_misses));
  doc.set("coalesced", json::Value::number(s.coalesced));
  doc.set("queue_len", json::Value::number(static_cast<u64>(queue_len)));
  doc.set("executing", json::Value::number(static_cast<u64>(executing)));
  doc.set("queue_depth", json::Value::number(static_cast<u64>(options_.queue_depth)));
  doc.set("max_inflight", json::Value::number(static_cast<u64>(options_.max_inflight)));
  doc.set("default_deadline_ms", json::Value::number(options_.default_deadline_ms));
  doc.set("cache_ready", json::Value::number(static_cast<u64>(cache_.ready_entries())));
  doc.set("cache_bytes",
          json::Value::number(static_cast<u64>(cache_.ready_payload_bytes())));
  doc.set("cache_evicted", json::Value::number(static_cast<u64>(cache_.evicted_entries())));
  doc.set("cache_loaded", json::Value::number(static_cast<u64>(cache_.loaded_entries())));
  doc.set("cache_lines_skipped",
          json::Value::number(static_cast<u64>(cache_.loaded_lines_skipped())));
  return doc;
}

}  // namespace bfly::serve
