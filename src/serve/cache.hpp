// Single-flight memoizing result cache for the serving layer, with a durable
// JSONL journal for crash recovery.
//
// The cache stores *serialized result text* keyed by the request content
// hash (serve::request_key).  Because every compute operation is a pure
// function of its key, a stored payload is valid forever; serving it is
// byte-identical to recomputing (the bitwise-determinism contract every
// engine in this repo carries is what makes that safe).
//
// Single-flight: the first requester of a missing key becomes the *owner*
// and computes; concurrent requesters for the same key become *joiners* and
// are parked (asynchronously — no thread blocks) until the owner publishes
// or fails.  A joiner only ever EXTENDS the shared compute's deadline
// (CancelToken::extend_deadline_until), so an early-deadline owner cannot
// starve a patient joiner; a joiner whose own deadline passes first is
// expired individually by the server's reaper via expire_waiters without
// disturbing the compute.
//
// Durability: publish() appends the record to the journal — fsynced,
// at-most-one-torn-tail (util::append_line_durable) — BEFORE the payload
// becomes visible, so every response a client ever saw is already on disk.
// After kill -9, the constructor reloads the journal (torn-line tolerant,
// last record wins, one summary count — never a warning per line) and the
// daemon re-serves previously completed requests bit-identically.  compact()
// rewrites the journal atomically (one record per live key, sorted) on
// graceful drain.
//
// Bounded memory and disk: the cache is an LRU over ready entries, capped
// both by entry count and by total payload bytes (CacheLimits) — a client
// iterating seeds cannot grow daemon RSS without bound; the coldest entries
// are dropped and recompute on their next request (still bit-identical, by
// determinism).  The journal is append-only between compactions, so it
// accumulates superseded and evicted records; when its size crosses
// journal_compact_bytes, publish() compacts it in place (atomic rewrite of
// live entries only), bounding disk alongside RSS instead of only on drain.
//
// Journal record (one line):  {"v": 1, "key": "<16 hex>", "result": "<text>"}
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "util/bits.hpp"
#include "util/cancel.hpp"

namespace bfly::serve {

/// Journal format version; bump on incompatible record changes (old-version
/// records are skipped on load, like exec checkpoints).
inline constexpr int kCacheJournalVersion = 1;

/// Retention bounds for the cache and its journal.  Evicting a ready entry
/// is always safe (the next identical request recomputes the same bytes);
/// pending entries are never evicted.
struct CacheLimits {
  /// Ready entries retained; the least-recently-used beyond this is evicted.
  std::size_t max_entries = 65'536;
  /// Total retained payload bytes; LRU eviction keeps the sum at or under
  /// this (except that the single most-recently-published entry is always
  /// kept, even if it alone exceeds the cap).
  std::size_t max_payload_bytes = std::size_t{256} << 20;  // 256 MiB
  /// Journal size (bytes) that triggers an automatic compaction on the next
  /// publish.  Appends accumulate superseded + evicted records between
  /// compactions; this bounds disk growth under unbounded unique traffic.
  std::size_t journal_compact_bytes = std::size_t{512} << 20;  // 512 MiB
};

/// How a lookup resolved for an asynchronous joiner.
enum class WaitResult {
  kReady,    ///< owner published; payload attached
  kFailed,   ///< owner's compute threw or was cancelled; error attached
  kExpired,  ///< this joiner's own deadline passed while parked
};

/// Fired exactly once per parked joiner, from the owner's thread (publish /
/// fail) or the reaper (expire_waiters).  `payload_or_error` is the result
/// text for kReady, the owner's error message for kFailed, empty for
/// kExpired.  `code` is the owner's failure code for kFailed (so a joiner
/// behind a deadline-cancelled compute answers deadline_exceeded, not a
/// generic internal error), kDeadlineExceeded for kExpired, unused for
/// kReady.
using WaitCallback =
    std::function<void(WaitResult, ErrorCode code, const std::string& payload_or_error)>;

/// lookup_or_begin's verdict.
enum class Admission {
  kHit,     ///< payload already cached; returned synchronously
  kOwner,   ///< caller must compute, then publish() or fail()
  kJoined,  ///< a compute is in flight; the callback was parked
};

class ServeCache {
 public:
  /// `journal_path` empty = memory-only (no persistence).  Otherwise loads
  /// the journal if present; unreadable/torn lines are counted, not fatal.
  /// A journal larger than the limits loads LRU-truncated (file order is
  /// the recency order a crash left behind).
  explicit ServeCache(std::string journal_path, CacheLimits limits = CacheLimits{});

  ServeCache(const ServeCache&) = delete;
  ServeCache& operator=(const ServeCache&) = delete;

  /// The single-flight gate.  Thread-safe; never blocks on a compute.
  ///  - kHit: *payload_out is the cached text.
  ///  - kOwner: a pending entry now exists; *token_out (owned by the entry,
  ///    valid until publish/fail for this key) is armed with `deadline` and
  ///    must be threaded into the compute.  The caller MUST eventually call
  ///    publish() or fail() exactly once.
  ///  - kJoined: `on_done` was parked on the in-flight entry and the entry's
  ///    token deadline extended to cover `deadline`.
  Admission lookup_or_begin(const std::string& key,
                            std::chrono::steady_clock::time_point deadline,
                            std::string* payload_out, const CancelToken** token_out,
                            WaitCallback on_done);

  /// Owner completion: journals the record durably, then makes the payload
  /// visible and fires every parked joiner with kReady.  The durability
  /// ordering (journal append BEFORE visibility) is the crash-recovery
  /// contract: completed responses are always replayable.
  void publish(const std::string& key, const std::string& payload);

  /// Owner failure (engine threw, or deadline cancelled the compute): drops
  /// the pending entry — a later identical request computes afresh — and
  /// fires every still-parked joiner with kFailed, `code`, and `error`.
  void fail(const std::string& key, ErrorCode code, const std::string& error);

  /// Requests cancellation on every in-flight compute's token (graceful
  /// drain past its budget).  The owners observe the trip at their engines'
  /// poll points and then call fail(); this only raises the flag.  Returns
  /// the number of pending entries signalled.
  std::size_t cancel_pending();

  /// Fires kExpired for every parked joiner whose deadline is <= now.
  /// Called periodically by the server's reaper thread; returns the number
  /// of joiners expired.
  std::size_t expire_waiters(std::chrono::steady_clock::time_point now);

  /// Earliest parked-joiner deadline, or time_point::max() when none — the
  /// reaper's next wake hint.
  std::chrono::steady_clock::time_point next_waiter_deadline() const;

  /// Atomically rewrites the journal to one record per ready key (sorted by
  /// key, so the compacted file is deterministic).  No-op when memory-only.
  void compact() const;

  /// Ready (published) entries.
  std::size_t ready_entries() const;
  /// Total payload bytes across ready entries.
  std::size_t ready_payload_bytes() const;
  /// Ready entries dropped by LRU eviction since construction.
  std::size_t evicted_entries() const;
  /// Entries restored from the journal by the constructor (post-eviction).
  std::size_t loaded_entries() const { return loaded_entries_; }
  /// Torn / corrupt / wrong-version journal lines skipped on load.
  std::size_t loaded_lines_skipped() const { return loaded_lines_skipped_; }
  const CacheLimits& limits() const { return limits_; }

 private:
  struct Waiter {
    std::chrono::steady_clock::time_point deadline;
    WaitCallback on_done;
  };
  struct Entry {
    bool ready = false;
    std::string payload;          // valid when ready
    CancelToken token;            // the shared compute's token (owner entries)
    std::vector<Waiter> waiters;  // parked joiners (pending entries)
    std::list<std::string>::iterator lru_it;  // position in lru_ (ready only)
  };

  std::string encode_record(const std::string& key, const std::string& payload) const;
  /// Marks `entry` ready with `payload` at the hot end of the LRU.  Caller
  /// holds mu_ and follows up with evict_over_limits_locked, which drops
  /// cold ready entries until both limits hold (`protect_key` is never
  /// evicted, so the newest entry survives even if it alone busts the byte
  /// cap).
  void make_ready_locked(const std::string& key, Entry* entry, const std::string& payload);
  void evict_over_limits_locked(const std::string& protect_key);

  const std::string journal_path_;
  const CacheLimits limits_;
  std::size_t loaded_entries_ = 0;
  std::size_t loaded_lines_skipped_ = 0;

  mutable std::mutex mu_;
  // std::map: deterministic iteration order for compact().
  std::map<std::string, std::shared_ptr<Entry>> entries_;
  // Ready keys, coldest first; Entry::lru_it points into this list.
  std::list<std::string> lru_;
  std::size_t ready_count_ = 0;
  std::size_t ready_bytes_ = 0;
  std::size_t evicted_ = 0;

  // Serializes journal appends and orders them before visibility; separate
  // from mu_ so an fsync never stalls unrelated cache lookups.
  mutable std::mutex journal_mu_;
  // Journal size in bytes since the last compaction; guarded by journal_mu_.
  mutable std::size_t journal_bytes_ = 0;
};

}  // namespace bfly::serve
