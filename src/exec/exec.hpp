// bfly::exec — resilient execution for batched saturation sweeps.
//
// saturation_sweep() (sim/sweep.hpp) is the fast path: run every point, all
// or nothing.  run_sweep_resumable() wraps it in the machinery a long batch
// job needs to survive the real world:
//
//   * Cancellation & deadlines.  A CancelToken (caller-supplied or internal,
//     optionally armed with a wall-clock budget) is threaded through the
//     thread pool *and* into both packet engines, which poll it every
//     kCancelPollCycles cycles — so a cancelled sweep stops within one poll
//     batch per in-flight worker and returns whatever completed, instead of
//     hanging until SIGKILL loses everything.
//   * Checkpoint / resume.  Each completed outcome is appended durably to a
//     JSONL journal keyed by a content hash of its SweepPoint
//     (exec/checkpoint.hpp).  A restarted run replays recorded outcomes and
//     simulates only the remainder; the combined result — outcome vector,
//     status, counts, and outcome-derived gauges — is bitwise identical to
//     an uninterrupted run (the contract tests/test_exec.cpp enforces for
//     every kill point).
//   * Retry with bounded backoff.  A point that throws is retried up to
//     RetryPolicy::max_attempts times with exponential backoff and seeded
//     jitter; sleeps poll the token so cancellation is never delayed by a
//     backoff.  Exhausted points are recorded per-reason, and the run
//     degrades to kPartial rather than aborting the grid.
//   * Accounting.  exec.retries / exec.cancelled / exec.expired /
//     exec.replayed / exec.failed counters and exec.points_completed /
//     exec.points_total gauges land in the obs registry (created even when
//     zero, so run reports always carry them), and the run's SweepStatus
//     feeds the report-level "status" field (obs/report.hpp).
//
// See docs/resilience.md for the full contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "sim/sweep.hpp"
#include "util/cancel.hpp"

namespace bfly::exec {

/// How a resumable sweep ended.  Mirrored (lower-cased) in the run report's
/// "status" field.
enum class SweepStatus {
  kComplete,   ///< every point has an outcome
  kPartial,    ///< some points permanently failed (retries exhausted)
  kCancelled,  ///< stopped early by cancellation or deadline expiry
};

/// "complete" / "partial" / "cancelled".
const char* to_string(SweepStatus status);

/// Bounded exponential backoff between attempts of one failing point.
/// Attempt k (1-based) sleeps min(cap, base * factor^(k-1)) scaled by a
/// jitter factor in [0.5, 1.5) drawn deterministically from
/// (jitter_seed, point index, k) — seeded jitter, so two runs of the same
/// grid back off identically.
struct RetryPolicy {
  int max_attempts = 3;           ///< total tries per point (>= 1)
  double backoff_base_ms = 10.0;  ///< first retry delay
  double backoff_factor = 2.0;
  double backoff_cap_ms = 1000.0;
  u64 jitter_seed = 0;
};

/// The supervisor's backoff schedule, exposed so callers (and tests) can
/// reason about exactly what a retrying run will sleep: the delay before the
/// retry that follows 1-based `attempt`'s failure of point `index` is
/// min(cap, base * factor^(attempt-1)) scaled by a jitter factor in
/// [0.5, 1.5) drawn deterministically from (jitter_seed, index, attempt),
/// with the final value clamped into [backoff_base_ms, backoff_cap_ms] — the
/// jitter spreads retries apart but can never undercut the configured floor
/// or overshoot the cap.  A pure function of its arguments: two runs of the
/// same grid with the same policy back off identically.
/// Requires 0 <= backoff_base_ms <= backoff_cap_ms.
double retry_backoff_ms(const RetryPolicy& retry, std::size_t index, int attempt);

struct SweepRunOptions {
  std::size_t threads = 0;  ///< max concurrency, 0 = default (as saturation_sweep)

  /// JSONL checkpoint journal; empty disables checkpointing (the run is
  /// still cancellable and retried, just not resumable).
  std::string checkpoint_path;

  /// Live-progress JSONL sink: one durable append per run start/finish and
  /// per completed point (plus a samples record when the point carried
  /// telemetry), the stream `bflyreport watch` tails.  Empty falls back to
  /// $BFLY_TELEMETRY_FILE; unset env disables the sink.  Sink records carry
  /// wall-clock timestamps (for ETA) — they are progress reporting only and
  /// never feed back into outcomes, which stay bitwise deterministic.
  std::string telemetry_path;

  /// Caller-owned cancellation control; null gives the run a private token
  /// (needed when deadline_seconds is set).  Must outlive the call.
  CancelToken* cancel = nullptr;

  /// Wall-clock budget for the whole run; > 0 arms the token's deadline.
  double deadline_seconds = 0.0;

  RetryPolicy retry;

  /// Test/instrumentation hook, run before every engine attempt with
  /// (point index, 1-based attempt).  Exceptions it throws are treated as
  /// point failures — the fault-injection surface the retry tests use.
  std::function<void(std::size_t, int)> before_point;

  /// Hook run (under the checkpoint lock) right after a point's record is
  /// durably appended, with the number of points checkpointed so far in
  /// *this* process.  The kill-after-k resume tests abort the run here.
  std::function<void(std::size_t)> after_checkpoint;
};

struct SweepRun {
  SweepStatus status = SweepStatus::kComplete;
  /// Indexed like the request grid; slots with completed[i] == 0 are
  /// default-constructed (the point never finished).
  std::vector<SweepOutcome> outcomes;
  std::vector<std::uint8_t> completed;
  u64 num_completed = 0;  ///< points with an outcome (simulated + replayed)
  u64 num_replayed = 0;   ///< completed via checkpoint replay, not simulation
  u64 num_retries = 0;    ///< extra attempts across all points
  u64 num_failed = 0;     ///< points that exhausted their attempts
  std::string first_error;  ///< what() of the first point failure, if any

  bool complete() const { return status == SweepStatus::kComplete; }
};

/// Runs `points` like saturation_sweep but resiliently: validates the grid
/// up front, replays checkpointed outcomes, simulates the rest in parallel
/// under the cancellation token, retries failures per `options.retry`, and
/// leaves the registry's sweep gauges exactly as a serial run over the
/// completed points would.  Never throws for per-point failures (they are
/// status/accounting); still throws InvalidArgument for a malformed grid or
/// an unwritable checkpoint.
SweepRun run_sweep_resumable(std::span<const SweepPoint> points,
                             const SweepRunOptions& options = {});

}  // namespace bfly::exec
