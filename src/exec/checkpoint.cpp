#include "exec/checkpoint.hpp"

#include <bit>
#include <fstream>

#include "obs/json.hpp"
#include "util/fileio.hpp"

namespace bfly::exec {

namespace {

/// Folds the complete liveness map into the hash: link liveness in dense
/// link-index order, then node liveness in (stage * rows + row) order, bit-
/// packed 64 at a time.  Two fault sets hash equal iff every link and node
/// agrees, regardless of how the set was constructed.
void hash_fault_set(util::Fnv1a64* h, const FaultSet& faults) {
  h->update(static_cast<u64>(faults.dimension()));
  u64 word = 0;
  int bits = 0;
  const auto push_bit = [&](bool alive) {
    word = (word << 1) | (alive ? 1u : 0u);
    if (++bits == 64) {
      h->update(word);
      word = 0;
      bits = 0;
    }
  };
  for (u64 link = 0; link < faults.num_links(); ++link) push_bit(faults.link_alive_index(link));
  for (int stage = 0; stage <= faults.dimension(); ++stage) {
    for (u64 row = 0; row < faults.rows(); ++row) push_bit(faults.node_alive(row, stage));
  }
  if (bits > 0) h->update(word);
}

json::Value point_to_json(const SaturationPoint& p) {
  json::Value v = json::Value::object();
  v.set("offered_load", json::Value::number(p.offered_load));
  v.set("throughput", json::Value::number(p.throughput));
  v.set("avg_latency", json::Value::number(p.avg_latency));
  v.set("per_node_injection", json::Value::number(p.per_node_injection));
  v.set("delivered", json::Value::number(p.delivered));
  v.set("max_queue", json::Value::number(p.max_queue));
  v.set("dropped_queue_full", json::Value::number(p.dropped_queue_full));
  return v;
}

json::Value tally_to_json(const FaultTally& t) {
  json::Value v = json::Value::object();
  v.set("delivered", json::Value::number(t.delivered));
  json::Value dropped = json::Value::array();
  for (const u64 d : t.dropped) dropped.push_back(json::Value::number(d));
  v.set("dropped", std::move(dropped));
  v.set("misroutes", json::Value::number(t.misroutes));
  v.set("wraps", json::Value::number(t.wraps));
  return v;
}

SaturationPoint point_from_json(const json::Value& v) {
  SaturationPoint p;
  p.offered_load = v.at("offered_load").as_double();
  p.throughput = v.at("throughput").as_double();
  p.avg_latency = v.at("avg_latency").as_double();
  p.per_node_injection = v.at("per_node_injection").as_double();
  p.delivered = v.at("delivered").as_u64();
  p.max_queue = v.at("max_queue").as_u64();
  p.dropped_queue_full = v.at("dropped_queue_full").as_u64();
  return p;
}

json::Value live_to_json(const LiveFaultStats& s) {
  json::Value v = json::Value::object();
  v.set("fail_events", json::Value::number(s.fail_events));
  v.set("repair_events", json::Value::number(s.repair_events));
  v.set("failovers", json::Value::number(s.failovers));
  v.set("spares_used", json::Value::number(s.spares_used));
  v.set("links_killed", json::Value::number(s.links_killed));
  v.set("links_revived", json::Value::number(s.links_revived));
  return v;
}

LiveFaultStats live_from_json(const json::Value& v) {
  LiveFaultStats s;
  s.fail_events = v.at("fail_events").as_u64();
  s.repair_events = v.at("repair_events").as_u64();
  s.failovers = v.at("failovers").as_u64();
  s.spares_used = v.at("spares_used").as_u64();
  s.links_killed = v.at("links_killed").as_u64();
  s.links_revived = v.at("links_revived").as_u64();
  return s;
}

FaultTally tally_from_json(const json::Value& v) {
  FaultTally t;
  t.delivered = v.at("delivered").as_u64();
  const json::Value& dropped = v.at("dropped");
  BFLY_REQUIRE(dropped.is_array() && dropped.size() == kNumDropReasons,
               "checkpoint tally has wrong dropped arity");
  for (std::size_t i = 0; i < kNumDropReasons; ++i) t.dropped[i] = dropped.at(i).as_u64();
  t.misroutes = v.at("misroutes").as_u64();
  t.wraps = v.at("wraps").as_u64();
  return t;
}

}  // namespace

std::string sweep_point_key(const SweepPoint& point) {
  util::Fnv1a64 h;
  h.update(kCheckpointVersion);
  h.update(static_cast<u64>(point.n));
  // Hash the bit pattern, not a decimal rendering: distinct doubles (and
  // -0.0 vs 0.0) must key distinct records.
  h.update(std::bit_cast<u64>(point.offered_load));
  h.update(point.cycles);
  h.update(point.seed);
  h.update(point.warmup_cycles);
  h.update(point.queue_capacity);
  h.update(point.telemetry_budget);
  h.update(point.flight_budget);
  // v5: the sharded engine's per-row-block RNG decomposition makes
  // shard_count outcome-relevant, so it keys distinct records (0 = serial).
  h.update(point.shard_count);
  h.update(static_cast<u64>(static_cast<i64>(point.routing.misroute_budget)));
  h.update(static_cast<u64>(static_cast<i64>(point.routing.wrap_budget)));
  if (point.faults == nullptr) {
    h.update(u64{0});
  } else {
    h.update(u64{1});
    hash_fault_set(&h, *point.faults);
  }
  // The live fault timeline is part of the point's identity: two points
  // differing only in their schedule must key distinct records.
  if (point.schedule == nullptr) {
    h.update(u64{0});
  } else {
    h.update(u64{1});
    h.update(point.schedule->content_hash());
  }
  return util::to_hex16(h.digest());
}

std::string encode_checkpoint_line(const std::string& key, const SweepOutcome& outcome) {
  json::Value rec = json::Value::object();
  rec.set("v", json::Value::number(kCheckpointVersion));
  rec.set("key", json::Value::string(key));
  json::Value out = json::Value::object();
  out.set("point", point_to_json(outcome.point));
  out.set("tally", tally_to_json(outcome.tally));
  out.set("live", live_to_json(outcome.live));
  // Telemetry-enabled points persist their samples so replay restores them
  // bitwise; empty() covers both untelemetered points and BFLY_OBS=OFF
  // builds, where nothing was collected and nothing needs round-tripping.
  if (!outcome.timeseries.empty()) {
    out.set("timeseries", outcome.timeseries.to_json());
  }
  // Same contract for the flight recorder: persisted only when a sampled
  // trace exists, so replay restores the exact recorder state.
  if (!outcome.flight.empty()) {
    out.set("flight", outcome.flight.to_json());
  }
  rec.set("outcome", std::move(out));
  return rec.dump();
}

CheckpointLoad load_checkpoint(const std::string& path) {
  CheckpointLoad load;
  std::ifstream in(path, std::ios::binary);
  if (!in) return load;  // fresh checkpoint
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    ++load.lines_read;
    try {
      const json::Value rec = json::Value::parse(line);
      BFLY_REQUIRE(rec.is_object(), "checkpoint record must be an object");
      BFLY_REQUIRE(rec.at("v").as_u64() == kCheckpointVersion,
                   "unknown checkpoint record version");
      const std::string& key = rec.at("key").as_string();
      const json::Value& out = rec.at("outcome");
      SweepOutcome outcome;
      outcome.point = point_from_json(out.at("point"));
      outcome.tally = tally_from_json(out.at("tally"));
      outcome.live = live_from_json(out.at("live"));
      // Optional (v2): absent for untelemetered points and for journals
      // written by BFLY_OBS=OFF builds.
      if (const json::Value* ts = out.find("timeseries")) {
        outcome.timeseries = obs::TimeSeries::from_json(*ts);
      }
      // Optional (v3): absent unless the point sampled at least one packet.
      if (const json::Value* fl = out.find("flight")) {
        outcome.flight = obs::FlightRecorder::from_json(*fl);
      }
      load.outcomes[key] = outcome;
    } catch (const std::exception&) {
      // Torn tail from a crash mid-append, stray corruption, or a future
      // version: skip the line; the point just reruns.
      ++load.lines_skipped;
    }
  }
  return load;
}

}  // namespace bfly::exec
