// Sweep checkpoint journal: the persistence half of exec::run_sweep_resumable.
//
// A checkpoint is a JSONL file — one self-contained record per completed
// sweep point, appended durably (util::append_line_durable) the moment the
// point finishes:
//
//   {"v": 5, "key": "<16 hex>",
//    "outcome": {"point": {...}, "tally": {...}, "live": {...},
//                "timeseries": {...}?, "flight": {...}?}}
//
// The optional "timeseries" member (v2+, present iff the point requested a
// telemetry budget) carries the cycle-resolved samples, so a replayed point
// restores its telemetry bitwise — the kill/resume identity in test_exec
// covers the series too.  The optional "flight" member (v3, present iff the
// point requested a flight budget and any packet was sampled) carries the
// per-packet hop traces under the same bitwise replay contract.  The "live"
// member (v4, always present) carries the LiveFaultStats counters a
// scheduled point accumulated — all zeros for static/pristine points.
//
// The key is a *content hash* of the SweepPoint (every routing-relevant
// field, including the full fault-set liveness map), not a grid index: a
// restart matches records to the current request grid by content, so a
// checkpoint survives reordering or extending the grid and can never replay
// an outcome onto a point whose parameters changed.
//
// Bit-exactness: every numeric field is emitted through json::Value, whose
// writer prints non-integral doubles with %.17g — enough digits to round-trip
// IEEE-754 exactly — and all u64 fields an engine can produce are < 2^53,
// where doubles are exact.  Replayed outcomes are therefore bitwise identical
// to the originals, which is what makes the resume-equals-uninterrupted
// guarantee (docs/resilience.md) possible.
//
// Durability: a crash tears at most the final line (single-write O_APPEND +
// fsync discipline).  The loader skips anything unparsable — torn tail,
// stray garbage, records from a future schema version — and reports how many
// lines it skipped, so a damaged journal degrades to re-running a point
// instead of poisoning the resume.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>

#include "sim/sweep.hpp"

namespace bfly::exec {

/// Checkpoint record schema version.  v2 added the optional outcome
/// timeseries and folded telemetry_budget into the point key; v3 added the
/// optional flight-recorder payload and folded flight_budget into the key;
/// v4 added the always-present "live" schedule-application counters to the
/// outcome, folded the fault *schedule* content hash into the key, and
/// widened the tally's dropped array to 5 reasons (killed_by_fault); v5
/// folded shard_count into the key (a sharded point's injection RNG
/// decomposes per row block, so its outcome is different bits than the
/// serial engines' for otherwise identical parameters — the two must never
/// replay onto each other).  Older journals are skipped line-by-line on
/// load (their points simply rerun), the same degradation as a torn line.
inline constexpr u64 kCheckpointVersion = 5;

/// Content hash of `point` as 16 lowercase hex digits: FNV-1a over a
/// version tag and every field that affects the outcome (n, offered_load
/// bits, cycles, seed, warmup, queue capacity, telemetry budget, flight
/// budget, shard count, routing budgets, the full fault liveness map when
/// faults are attached, and the fault schedule's content hash when one is
/// attached).
/// Two points hash equal iff an engine run would be indistinguishable.
std::string sweep_point_key(const SweepPoint& point);

/// One completed outcome as a single-line checkpoint record (no newline).
std::string encode_checkpoint_line(const std::string& key, const SweepOutcome& outcome);

struct CheckpointLoad {
  /// Recorded outcomes by sweep-point content key (last record wins; records
  /// for points no longer in the grid are harmless and stay unused).
  std::unordered_map<std::string, SweepOutcome> outcomes;
  std::size_t lines_read = 0;     ///< non-blank lines seen
  std::size_t lines_skipped = 0;  ///< torn / corrupt / wrong-version lines
};

/// Reads a checkpoint journal; a missing file is an empty (fresh) checkpoint.
/// Unparsable lines are counted in lines_skipped and otherwise ignored.
CheckpointLoad load_checkpoint(const std::string& path);

}  // namespace bfly::exec
