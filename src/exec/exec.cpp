#include "exec/exec.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "exec/checkpoint.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "util/fileio.hpp"
#include "util/parallel.hpp"
#include "util/prng.hpp"

namespace bfly::exec {

const char* to_string(SweepStatus status) {
  switch (status) {
    case SweepStatus::kComplete:
      return "complete";
    case SweepStatus::kPartial:
      return "partial";
    case SweepStatus::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

double retry_backoff_ms(const RetryPolicy& retry, std::size_t index, int attempt) {
  BFLY_REQUIRE(retry.backoff_base_ms >= 0.0 && retry.backoff_base_ms <= retry.backoff_cap_ms,
               "retry policy requires 0 <= backoff_base_ms <= backoff_cap_ms");
  double delay = retry.backoff_base_ms;
  for (int i = 1; i < attempt; ++i) {
    delay *= retry.backoff_factor;
    if (delay >= retry.backoff_cap_ms) break;
  }
  delay = std::clamp(delay, 0.0, retry.backoff_cap_ms);
  SplitMix64 sm(retry.jitter_seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)) ^
                static_cast<u64>(attempt));
  const double jitter = 0.5 + static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  // The jitter spreads concurrent retries apart; the clamp keeps the promise
  // that no delay ever leaves [base, cap].
  return std::clamp(delay * jitter, retry.backoff_base_ms, retry.backoff_cap_ms);
}

namespace {

/// Sleeps ~`ms` in <= 10 ms slices, polling the token between slices: a
/// backoff must never delay cancellation by more than one slice.  Returns
/// false when the token tripped.
bool interruptible_sleep_ms(double ms, const CancelToken* token) {
  using clock = std::chrono::steady_clock;
  const auto until = clock::now() + std::chrono::duration_cast<clock::duration>(
                                        std::chrono::duration<double, std::milli>(ms));
  while (clock::now() < until) {
    if (CancelToken::cancelled(token)) return false;
    const auto left = until - clock::now();
    std::this_thread::sleep_for(std::min<clock::duration>(left, std::chrono::milliseconds(10)));
  }
  return !CancelToken::cancelled(token);
}

/// Wall-clock milliseconds since the Unix epoch — telemetry-sink timestamps
/// only (progress/ETA rendering); never part of deterministic outcome state.
u64 wall_ms_now() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::system_clock::now().time_since_epoch())
                              .count());
}

/// Live-progress JSONL sink.  Appends are durable (fsync, at-most-one-torn-
/// tail) so `bflyreport watch` can tail the file across crashes; a sink I/O
/// failure disables further appends instead of failing the run — progress
/// streaming is advisory, unlike the checkpoint journal.
class TelemetrySink {
 public:
  explicit TelemetrySink(std::string path) : path_(std::move(path)) {}

  bool enabled() const { return !path_.empty(); }

  void emit(json::Value record) {
    if (path_.empty()) return;
    record.set("t_ms", json::Value::number(wall_ms_now()));
    try {
      obs::append_telemetry_line(path_, record);
    } catch (const std::exception&) {
      path_.clear();
    }
  }

 private:
  std::string path_;
};

/// Up to `max_points` values of `channel`, evenly strided across the series
/// (first and last samples always included) — the sparkline payload of a
/// "samples" sink record.
json::Value spark_values(const obs::TimeSeries& ts, std::string_view channel,
                         std::size_t max_points = 32) {
  json::Value arr = json::Value::array();
  const std::size_t ch = ts.channel_index(channel);
  const std::size_t n = ts.num_samples();
  if (ch == obs::TimeSeries::npos || n == 0) return arr;
  const std::size_t k = std::min(n, max_points);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t row = k == 1 ? 0 : i * (n - 1) / (k - 1);
    arr.push_back(json::Value::number(ts.value(row, ch)));
  }
  return arr;
}

}  // namespace

SweepRun run_sweep_resumable(std::span<const SweepPoint> points,
                             const SweepRunOptions& options) {
  BFLY_TRACE_SCOPE("exec.run_sweep_resumable");
  BFLY_REQUIRE(options.retry.max_attempts >= 1, "retry.max_attempts must be >= 1");
  BFLY_REQUIRE(options.deadline_seconds >= 0.0, "deadline_seconds must be >= 0");
  for (std::size_t i = 0; i < points.size(); ++i) validate_sweep_point(points[i], i);

  // Hoist every exec.* handle up front: get_counter creates the counter at 0,
  // so a run report built after any resumable sweep carries the full metric
  // family even when nothing was retried or cancelled.
  obs::Counter* retries_ctr = obs::get_counter("exec.retries");
  obs::Counter* cancelled_ctr = obs::get_counter("exec.cancelled");
  obs::Counter* expired_ctr = obs::get_counter("exec.expired");
  obs::Counter* replayed_ctr = obs::get_counter("exec.replayed");
  obs::Counter* failed_ctr = obs::get_counter("exec.failed");

  CancelToken local_token;
  CancelToken* token = options.cancel != nullptr ? options.cancel : &local_token;
  if (options.deadline_seconds > 0.0) {
    token->set_deadline_after(std::chrono::duration<double>(options.deadline_seconds));
  }

  SweepRun run;
  run.outcomes.resize(points.size());
  run.completed.assign(points.size(), 0);

  // Resume: match checkpoint records to the grid by content key and replay.
  std::vector<std::string> keys(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) keys[i] = sweep_point_key(points[i]);
  if (!options.checkpoint_path.empty()) {
    const CheckpointLoad ckpt = load_checkpoint(options.checkpoint_path);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto it = ckpt.outcomes.find(keys[i]);
      if (it == ckpt.outcomes.end()) continue;
      run.outcomes[i] = it->second;
      run.completed[i] = 1;
      ++run.num_replayed;
    }
    obs::add(replayed_ctr, run.num_replayed);
  }

  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (run.completed[i] == 0) pending.push_back(i);
  }

  TelemetrySink sink(!options.telemetry_path.empty() ? options.telemetry_path
                                                     : obs::telemetry_path_from_env());
  if (sink.enabled()) {
    json::Value start = json::Value::object();
    start.set("v", json::Value::number(u64{1}));
    start.set("type", json::Value::string("start"));
    start.set("total", json::Value::number(static_cast<u64>(points.size())));
    start.set("replayed", json::Value::number(run.num_replayed));
    start.set("pending", json::Value::number(static_cast<u64>(pending.size())));
    sink.emit(std::move(start));
  }

  std::mutex journal_mu;
  std::size_t journal_appends = 0;
  std::mutex error_mu;
  std::atomic<u64> retries{0};
  std::atomic<u64> failed{0};

  // Runs one grid point to completion: attempt -> backoff -> attempt, until
  // success, exhaustion, or cancellation.  Success records the outcome and
  // (durably) the checkpoint line; cancellation mid-engine discards the
  // partial outcome so only full, replay-safe results are ever recorded.
  const auto run_point = [&](std::size_t i) {
    const SweepPoint& p = points[i];
    for (int attempt = 1;; ++attempt) {
      if (token->cancelled()) return;
      SweepOutcome outcome;
      // Same per-point telemetry convention as saturation_sweep: a private
      // TimeSeries per attempt, installed only when the engine filled it, so
      // resumable runs match the plain sweep (and checkpoint replay) bitwise.
      obs::TimeSeries ts(std::max<u64>(p.telemetry_budget, 2));
      obs::TimeSeries* ts_ptr = p.telemetry_budget > 0 ? &ts : nullptr;
      // Flight traces follow the same private-per-attempt convention as the
      // timeseries; the shared make_flight_recorder derivation is what keeps
      // the sampled subset identical to a plain saturation_sweep run.
      obs::FlightRecorder flight = make_flight_recorder(p);
      obs::FlightRecorder* flight_ptr = flight.enabled() ? &flight : nullptr;
      try {
        if (options.before_point) options.before_point(i, attempt);
        // Engine dispatch (serial pristine/faulty, sharded, schedule base
        // state) lives in run_sweep_point — the same helper saturation_sweep
        // uses, so the two layers can never drift apart.
        outcome = run_sweep_point(p, token, ts_ptr, flight_ptr);
        // The token may have tripped mid-simulation, leaving a partial (or
        // even complete but indistinguishable) outcome: discard it — flight
        // traces included, so the journal never holds a torn trace.  The
        // point reruns on resume — cheap, and the only way to guarantee a
        // checkpoint never holds a truncated result.
        if (token->cancelled()) return;
      } catch (const std::exception& e) {
        {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (run.first_error.empty()) run.first_error = e.what();
        }
        if (attempt >= options.retry.max_attempts) {
          failed.fetch_add(1, std::memory_order_relaxed);
          obs::add(failed_ctr, 1);
          return;
        }
        retries.fetch_add(1, std::memory_order_relaxed);
        obs::add(retries_ctr, 1);
        if (!interruptible_sleep_ms(retry_backoff_ms(options.retry, i, attempt), token)) return;
        continue;
      }
      if (!ts.empty()) outcome.timeseries = std::move(ts);
      if (!flight.empty()) outcome.flight = std::move(flight);
      run.outcomes[i] = outcome;
      run.completed[i] = 1;
      if (!options.checkpoint_path.empty() || options.after_checkpoint || sink.enabled()) {
        // Serialize appends so records never interleave; checkpoint I/O
        // failures propagate (a dead journal is a run-level error, not a
        // point retry) while sink failures only mute the progress stream.
        const std::lock_guard<std::mutex> lock(journal_mu);
        if (!options.checkpoint_path.empty()) {
          util::append_line_durable(options.checkpoint_path,
                                    encode_checkpoint_line(keys[i], outcome));
        }
        ++journal_appends;
        if (sink.enabled()) {
          json::Value rec = json::Value::object();
          rec.set("v", json::Value::number(u64{1}));
          rec.set("type", json::Value::string("point"));
          rec.set("index", json::Value::number(static_cast<u64>(i)));
          rec.set("completed", json::Value::number(run.num_replayed +
                                                   static_cast<u64>(journal_appends)));
          rec.set("total", json::Value::number(static_cast<u64>(points.size())));
          rec.set("n", json::Value::number(p.n));
          rec.set("offered_load", json::Value::number(p.offered_load));
          rec.set("faulty", json::Value::boolean(sweep_point_is_faulty(p)));
          rec.set("throughput", json::Value::number(outcome.point.throughput));
          rec.set("avg_latency", json::Value::number(outcome.point.avg_latency));
          sink.emit(std::move(rec));
          // Sample flush: the point's telemetry, downsampled for sparklines.
          const obs::TimeSeries& series = run.outcomes[i].timeseries;
          if (!series.empty()) {
            json::Value flush = json::Value::object();
            flush.set("v", json::Value::number(u64{1}));
            flush.set("type", json::Value::string("samples"));
            flush.set("index", json::Value::number(static_cast<u64>(i)));
            flush.set("stride", json::Value::number(series.stride()));
            flush.set("num_samples", json::Value::number(
                                         static_cast<u64>(series.num_samples())));
            flush.set("in_flight", spark_values(series, obs::kChannelInFlight));
            json::Value stages = json::Value::array();
            const std::size_t last = series.num_samples() - 1;
            for (std::size_t c = 0; c < series.num_channels(); ++c) {
              if (series.channels()[c].rfind("stage", 0) != 0) continue;
              stages.push_back(json::Value::number(series.value(last, c)));
            }
            flush.set("stage_occ", std::move(stages));
            sink.emit(std::move(flush));
          }
        }
        if (options.after_checkpoint) options.after_checkpoint(journal_appends);
      }
      return;
    }
  };

  if (!pending.empty()) {
    std::size_t threads = options.threads != 0 ? options.threads : default_thread_count();
    threads = std::min(threads, pending.size());
    parallel_for_chunked(
        0, pending.size(), threads,
        [&](std::size_t lo, std::size_t hi, std::size_t /*tid*/) {
          for (std::size_t j = lo; j < hi; ++j) {
            if (token->cancelled()) return;
            run_point(pending[j]);
          }
        },
        token);
  }

  run.num_retries = retries.load(std::memory_order_relaxed);
  run.num_failed = failed.load(std::memory_order_relaxed);
  for (const std::uint8_t c : run.completed) run.num_completed += c;

  const u64 total = static_cast<u64>(points.size());
  if (run.num_completed == total) {
    run.status = SweepStatus::kComplete;
  } else if (token->cancelled()) {
    run.status = SweepStatus::kCancelled;
    // Per-reason accounting over the points the stop abandoned: a tripped
    // deadline counts as expired, an explicit request as cancelled.
    const u64 abandoned = total - run.num_completed;
    obs::add(token->expired() ? expired_ctr : cancelled_ctr, abandoned);
  } else {
    run.status = SweepStatus::kPartial;
  }

  // Leave the registry exactly as a serial run over the completed points
  // would: last-write-wins gauges re-set in request order, plus the run-level
  // progress gauges the report's "status" line summarizes.
  reset_sweep_gauges(points, run.outcomes, &run.completed);
  obs::set(obs::get_gauge("exec.points_completed"), static_cast<double>(run.num_completed));
  obs::set(obs::get_gauge("exec.points_total"), static_cast<double>(total));

  if (sink.enabled()) {
    json::Value done = json::Value::object();
    done.set("v", json::Value::number(u64{1}));
    done.set("type", json::Value::string("done"));
    done.set("status", json::Value::string(to_string(run.status)));
    done.set("completed", json::Value::number(run.num_completed));
    done.set("total", json::Value::number(total));
    done.set("replayed", json::Value::number(run.num_replayed));
    done.set("failed", json::Value::number(run.num_failed));
    sink.emit(std::move(done));
  }
  return run;
}

}  // namespace bfly::exec
