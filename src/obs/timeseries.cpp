#include "obs/timeseries.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>

#include "util/check.hpp"
#include "util/fileio.hpp"

namespace bfly::obs {

// ---------------------------------------------------------------------------
// TimeSeries

TimeSeries::TimeSeries(u64 sample_budget) : budget_(sample_budget) {
  BFLY_REQUIRE(sample_budget >= 2, "TimeSeries sample budget must be >= 2");
}

void TimeSeries::reset_channels(std::vector<std::string> channels) {
  BFLY_REQUIRE(!channels.empty(), "TimeSeries needs at least one channel");
  channels_ = std::move(channels);
  cycles_.clear();
  data_.clear();
  stride_ = 1;
}

void TimeSeries::record(u64 cycle, std::span<const double> values) {
  BFLY_REQUIRE(values.size() == channels_.size(),
               "TimeSeries row width must match the channel count");
  if ((cycle & (stride_ - 1)) != 0) return;
  BFLY_CHECK(cycles_.empty() || cycle > cycles_.back(),
             "TimeSeries cycles must be strictly increasing");
  cycles_.push_back(cycle);
  data_.insert(data_.end(), values.begin(), values.end());
  if (cycles_.size() > budget_) thin();
}

void TimeSeries::thin() {
  // Doubling the stride keeps exactly the rows whose cycle is an even
  // multiple of the old stride.  Rows were consecutive multiples before, so
  // they are consecutive multiples of the new stride after — the equal-
  // spacing invariant the mean-based analytics rely on.
  stride_ <<= 1;
  const std::size_t width = channels_.size();
  std::size_t kept = 0;
  for (std::size_t row = 0; row < cycles_.size(); ++row) {
    if ((cycles_[row] & (stride_ - 1)) != 0) continue;
    cycles_[kept] = cycles_[row];
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(row * width), width,
                data_.begin() + static_cast<std::ptrdiff_t>(kept * width));
    ++kept;
  }
  cycles_.resize(kept);
  data_.resize(kept * width);
}

std::size_t TimeSeries::channel_index(std::string_view name) const {
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    if (channels_[i] == name) return i;
  }
  return npos;
}

double TimeSeries::value(std::size_t row, std::size_t channel) const {
  BFLY_REQUIRE(row < cycles_.size() && channel < channels_.size(),
               "TimeSeries sample index out of range");
  return data_[row * channels_.size() + channel];
}

std::span<const double> TimeSeries::row(std::size_t index) const {
  BFLY_REQUIRE(index < cycles_.size(), "TimeSeries row index out of range");
  return {data_.data() + index * channels_.size(), channels_.size()};
}

std::vector<double> TimeSeries::channel_values(std::size_t channel) const {
  BFLY_REQUIRE(channel < channels_.size(), "TimeSeries channel index out of range");
  std::vector<double> out;
  out.reserve(cycles_.size());
  for (std::size_t row = 0; row < cycles_.size(); ++row) {
    out.push_back(data_[row * channels_.size() + channel]);
  }
  return out;
}

json::Value TimeSeries::to_json() const {
  json::Value v = json::Value::object();
  v.set("v", json::Value::number(u64{1}));
  v.set("budget", json::Value::number(budget_));
  v.set("stride", json::Value::number(stride_));
  json::Value channels = json::Value::array();
  for (const std::string& name : channels_) channels.push_back(json::Value::string(name));
  v.set("channels", std::move(channels));
  json::Value cycles = json::Value::array();
  for (const u64 c : cycles_) cycles.push_back(json::Value::number(c));
  v.set("cycles", std::move(cycles));
  json::Value samples = json::Value::array();
  for (std::size_t r = 0; r < cycles_.size(); ++r) {
    json::Value row = json::Value::array();
    for (std::size_t c = 0; c < channels_.size(); ++c) {
      row.push_back(json::Value::number(data_[r * channels_.size() + c]));
    }
    samples.push_back(std::move(row));
  }
  v.set("samples", std::move(samples));
  return v;
}

TimeSeries TimeSeries::from_json(const json::Value& v) {
  BFLY_REQUIRE(v.is_object(), "timeseries block must be a JSON object");
  BFLY_REQUIRE(v.at("v").as_u64() == 1, "unsupported timeseries encoding version");
  TimeSeries ts(v.at("budget").as_u64());
  const json::Value& channels = v.at("channels");
  BFLY_REQUIRE(channels.is_array(), "timeseries channels must be an array");
  std::vector<std::string> names;
  names.reserve(channels.size());
  for (std::size_t i = 0; i < channels.size(); ++i) {
    names.push_back(channels.at(i).as_string());
  }
  // An empty channel list round-trips a series no engine ever filled (e.g. a
  // telemetry-enabled point run in a BFLY_OBS=OFF build).
  if (!names.empty()) ts.reset_channels(std::move(names));
  const u64 stride = v.at("stride").as_u64();
  BFLY_REQUIRE(stride >= 1 && std::has_single_bit(stride),
               "timeseries stride must be a power of two");
  ts.stride_ = stride;
  const json::Value& cycles = v.at("cycles");
  const json::Value& samples = v.at("samples");
  BFLY_REQUIRE(cycles.is_array() && samples.is_array() && cycles.size() == samples.size(),
               "timeseries cycles/samples must be arrays of equal length");
  BFLY_REQUIRE(cycles.size() <= ts.budget_, "timeseries has more samples than its budget");
  const std::size_t width = ts.channels_.size();
  for (std::size_t r = 0; r < cycles.size(); ++r) {
    const u64 cycle = cycles.at(r).as_u64();
    BFLY_REQUIRE((cycle & (stride - 1)) == 0, "timeseries cycle off the stride grid");
    BFLY_REQUIRE(ts.cycles_.empty() || cycle > ts.cycles_.back(),
                 "timeseries cycles must be strictly increasing");
    const json::Value& row = samples.at(r);
    BFLY_REQUIRE(row.is_array() && row.size() == width,
                 "timeseries sample row width must match the channel count");
    ts.cycles_.push_back(cycle);
    for (std::size_t c = 0; c < width; ++c) {
      ts.data_.push_back(row.at(c).as_double());
    }
  }
  return ts;
}

bool operator==(const TimeSeries& a, const TimeSeries& b) {
  if (a.budget_ != b.budget_ || a.stride_ != b.stride_) return false;
  if (a.channels_ != b.channels_ || a.cycles_ != b.cycles_) return false;
  if (a.data_.size() != b.data_.size()) return false;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    // Bit-pattern comparison: replay identity is exact, not epsilon.
    if (std::bit_cast<u64>(a.data_[i]) != std::bit_cast<u64>(b.data_[i])) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Analytics

namespace {

double mean_range(const TimeSeries& ts, std::size_t channel, std::size_t first,
                  std::size_t last_exclusive) {
  double sum = 0.0;
  for (std::size_t r = first; r < last_exclusive; ++r) sum += ts.value(r, channel);
  const std::size_t count = last_exclusive - first;
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace

SteadyState steady_state_onset(const TimeSeries& ts, std::string_view channel,
                               std::size_t window, double tolerance) {
  BFLY_REQUIRE(window >= 1, "steady-state window must be >= 1");
  SteadyState out;
  const std::size_t ch = ts.channel_index(channel);
  const std::size_t n = ts.num_samples();
  if (ch == TimeSeries::npos || n < 2 * window) return out;
  // Reference: the mean over the last half of the run, where the transient
  // (if the run reaches steady state at all) has died out.
  const double ref = mean_range(ts, ch, n / 2, n);
  const double band = tolerance * std::abs(ref);
  for (std::size_t i = 0; i + window <= n; ++i) {
    const double m = mean_range(ts, ch, i, i + window);
    if (std::abs(m - ref) <= band) {
      out.found = true;
      out.sample_index = i;
      out.cycle = ts.cycles()[i];
      return out;
    }
  }
  return out;
}

LittlesLawCheck littles_law_check(const TimeSeries& ts, double tolerance) {
  LittlesLawCheck out;
  const std::size_t ch_l = ts.channel_index(kChannelInFlight);
  const std::size_t ch_d = ts.channel_index(kChannelDelivered);
  const std::size_t ch_w = ts.channel_index(kChannelLatencySum);
  const std::size_t n = ts.num_samples();
  if (ch_l == TimeSeries::npos || ch_d == TimeSeries::npos ||
      ch_w == TimeSeries::npos || n < 4) {
    return out;
  }
  const SteadyState steady = steady_state_onset(ts, kChannelInFlight);
  const std::size_t first = steady.found ? steady.sample_index : n / 2;
  const std::size_t last = n - 1;
  if (first >= last) return out;
  const double d_delivered = ts.value(last, ch_d) - ts.value(first, ch_d);
  const double d_latency = ts.value(last, ch_w) - ts.value(first, ch_w);
  const double d_cycles =
      static_cast<double>(ts.cycles()[last] - ts.cycles()[first]);
  if (d_delivered <= 0.0 || d_cycles <= 0.0) return out;
  out.applicable = true;
  out.steady_from_cycle = ts.cycles()[first];
  out.lambda = d_delivered / d_cycles;
  out.w = d_latency / d_delivered;
  // Mean occupancy over the steady window; samples are equally spaced (the
  // stride invariant), so the plain mean is the time-weighted mean.
  out.l = mean_range(ts, ch_l, first, last + 1);
  const double predicted = out.lambda * out.w;
  const double scale = std::max(out.l, predicted);
  out.rel_error = scale <= 0.0 ? 0.0 : std::abs(out.l - predicted) / scale;
  out.pass = out.rel_error <= tolerance;
  return out;
}

// ---------------------------------------------------------------------------
// OccupancyFrames

OccupancyFrames::OccupancyFrames(u64 frame_budget) : budget_(frame_budget) {
  BFLY_REQUIRE(frame_budget >= 2, "OccupancyFrames budget must be >= 2");
}

void OccupancyFrames::record(u64 cycle, std::span<const double> link_occupancy) {
  if ((cycle & (stride_ - 1)) != 0) return;
  if (cycles_.empty()) {
    num_links_ = link_occupancy.size();
  }
  BFLY_REQUIRE(link_occupancy.size() == num_links_,
               "OccupancyFrames frame width must stay constant");
  BFLY_CHECK(cycles_.empty() || cycle > cycles_.back(),
             "OccupancyFrames cycles must be strictly increasing");
  cycles_.push_back(cycle);
  data_.insert(data_.end(), link_occupancy.begin(), link_occupancy.end());
  if (cycles_.size() > budget_) thin();
}

void OccupancyFrames::thin() {
  stride_ <<= 1;
  std::size_t kept = 0;
  for (std::size_t row = 0; row < cycles_.size(); ++row) {
    if ((cycles_[row] & (stride_ - 1)) != 0) continue;
    cycles_[kept] = cycles_[row];
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(row * num_links_), num_links_,
                data_.begin() + static_cast<std::ptrdiff_t>(kept * num_links_));
    ++kept;
  }
  cycles_.resize(kept);
  data_.resize(kept * num_links_);
}

std::span<const double> OccupancyFrames::frame(std::size_t index) const {
  BFLY_REQUIRE(index < cycles_.size(), "OccupancyFrames frame index out of range");
  return {data_.data() + index * num_links_, num_links_};
}

// ---------------------------------------------------------------------------
// Live telemetry sink

std::string telemetry_path_from_env() {
  const char* path = std::getenv("BFLY_TELEMETRY_FILE");
  return path == nullptr ? std::string() : std::string(path);
}

void append_telemetry_line(const std::string& path, const json::Value& record) {
  util::append_line_durable(path, record.dump());
}

}  // namespace bfly::obs
