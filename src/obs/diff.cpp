#include "obs/diff.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace bfly::obs {

namespace {

[[noreturn]] void bad_report(const std::string& what) {
  throw InvalidArgument("run report: " + what);
}

const json::Value& require_key(const json::Value& obj, std::string_view key,
                               json::Value::Type type, const char* context) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) bad_report(std::string(context) + " is missing key '" + std::string(key) + "'");
  if (v->type() != type) {
    bad_report(std::string(context) + " key '" + std::string(key) + "' has the wrong type");
  }
  return *v;
}

/// Percentile label: 0.5 -> "p50", 0.999 -> "p99.9".
std::string percentile_label(double q) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%g", q * 100.0);
  return std::string("p") + buf;
}

/// The flattened numeric surface of a report, in section order.
struct FlatReport {
  std::vector<std::pair<std::string, double>> entries;
  std::unordered_map<std::string, double> index;

  void add(std::string key, double value) {
    index.emplace(key, value);
    entries.emplace_back(std::move(key), value);
  }
};

void flatten_artifact(const std::string& prefix, const json::Value& v, FlatReport* out) {
  switch (v.type()) {
    case json::Value::Type::kNumber: out->add(prefix, v.as_double()); return;
    case json::Value::Type::kObject:
      for (const auto& [key, member] : v.members()) {
        flatten_artifact(prefix + "." + key, member, out);
      }
      return;
    case json::Value::Type::kArray:
      for (std::size_t i = 0; i < v.size(); ++i) {
        flatten_artifact(prefix + "." + std::to_string(i), v.at(i), out);
      }
      return;
    default: return;  // strings / bools / nulls are not comparable metrics
  }
}

FlatReport flatten(const RunReport& report, const DiffOptions& options) {
  FlatReport flat;
  const json::Value& metrics = report.doc.at("metrics");

  for (const auto& [name, v] : metrics.at("counters").members()) {
    flat.add("counters." + name, v.as_double());
  }
  for (const auto& [name, v] : metrics.at("gauges").members()) {
    flat.add("gauges." + name, v.as_double());
  }
  for (const auto& [name, h] : metrics.at("histograms").members()) {
    const std::string prefix = "histograms." + name;
    flat.add(prefix + ".count", h.at("count").as_double());
    const json::Value& bounds_json = h.at("bounds");
    const json::Value& counts_json = h.at("counts");
    std::vector<double> bounds(bounds_json.size());
    std::vector<u64> counts(counts_json.size());
    for (std::size_t i = 0; i < bounds.size(); ++i) bounds[i] = bounds_json.at(i).as_double();
    for (std::size_t i = 0; i < counts.size(); ++i) counts[i] = counts_json.at(i).as_u64();
    for (const double q : options.percentiles) {
      flat.add(prefix + "." + percentile_label(q), estimate_percentile(bounds, counts, q));
    }
  }
  const json::Value& spans = report.doc.at("spans");
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const json::Value& span = spans.at(i);
    const std::string prefix = "spans." + span.at("name").as_string();
    flat.add(prefix + ".count", span.at("count").as_double());
    flat.add(prefix + ".total_us", span.at("total_us").as_double());
    flat.add(prefix + ".max_us", span.at("max_us").as_double());
  }
  flatten_artifact("artifact_stats", report.doc.at("artifact_stats"), &flat);
  // v2 telemetry block: summarize rather than flatten the raw rows — sample
  // cycles are config-dependent, so per-row keys would never line up between
  // runs, but per-channel means and final values are stable summaries.
  if (const json::Value* ts = report.doc.find("timeseries")) {
    const json::Value& cycles = ts->at("cycles");
    const json::Value& channels = ts->at("channels");
    const json::Value& samples = ts->at("samples");
    flat.add("timeseries.samples", static_cast<double>(cycles.size()));
    flat.add("timeseries.stride", ts->at("stride").as_double());
    for (std::size_t c = 0; c < channels.size(); ++c) {
      const std::string prefix = "timeseries." + channels.at(c).as_string();
      double sum = 0.0;
      for (std::size_t r = 0; r < samples.size(); ++r) sum += samples.at(r).at(c).as_double();
      const std::size_t rows = samples.size();
      flat.add(prefix + ".mean", rows > 0 ? sum / static_cast<double>(rows) : 0.0);
      flat.add(prefix + ".last", rows > 0 ? samples.at(rows - 1).at(c).as_double() : 0.0);
    }
  }
  // v2 flight block: like telemetry, summarize — the per-trace hop sequences
  // are exact replay state, but only the aggregate counts make stable diff
  // keys.  All of these are deterministic per config, so exact-match rules
  // apply cleanly.
  if (const json::Value* fl = report.doc.find("flight")) {
    const json::Value& traces = fl->at("traces");
    // Per-reason drop counts (codes 0..4 = the kFlightDrop* constants): a
    // faulty run's drops are a mix of queue-full, budget, endpoint, and
    // fault-kill losses, and an aggregate count would hide a regression in
    // one bucket compensated by another.  All five keys always emit (as
    // zeros when unused) so baseline and candidate line up.
    constexpr std::size_t kReasons = 5;
    static constexpr const char* kReasonName[kReasons] = {
        "endpoint_dead", "no_alive_link", "budget_exhausted", "queue_full", "killed_by_fault"};
    double delivered = 0.0, dropped = 0.0, hops = 0.0;
    double by_reason[kReasons] = {};
    for (std::size_t i = 0; i < traces.size(); ++i) {
      const json::Value& t = traces.at(i);
      const u64 outcome = t.at("outcome").as_u64();
      if (outcome == 1) delivered += 1.0;
      if (outcome == 2) {
        dropped += 1.0;
        const u64 reason = t.at("drop_reason").as_u64();
        if (reason < kReasons) by_reason[reason] += 1.0;
      }
      hops += static_cast<double>(t.at("hops").size());
    }
    flat.add("flight.sampled", static_cast<double>(traces.size()));
    flat.add("flight.packets_seen", fl->at("packets_seen").as_double());
    flat.add("flight.delivered", delivered);
    flat.add("flight.dropped", dropped);
    for (std::size_t r = 0; r < kReasons; ++r) {
      flat.add(std::string("flight.dropped.") + kReasonName[r], by_reason[r]);
    }
    flat.add("flight.hops", hops);
  }
  return flat;
}

/// Histogram keys warn (not fail) when absent from the candidate: full-replay
/// runs record no per-event observations, so their reports legitimately carry
/// no histograms (see CheckResult's doc comment).
bool is_histogram_key(std::string_view key) {
  return key.starts_with("histograms.");
}

}  // namespace

RunReport RunReport::parse(std::string_view text) {
  RunReport report;
  report.doc = json::Value::parse(text);
  if (!report.doc.is_object()) bad_report("document is not an object");

  const json::Value& version =
      require_key(report.doc, "schema_version", json::Value::Type::kNumber, "document");
  if (version.as_double() != 1 && version.as_double() != 2) {
    bad_report("unsupported schema_version " + version.dump() + " (expected 1 or 2)");
  }
  report.name =
      require_key(report.doc, "name", json::Value::Type::kString, "document").as_string();
  report.run_id =
      require_key(report.doc, "run_id", json::Value::Type::kString, "document").as_string();
  report.git_describe =
      require_key(report.doc, "git_describe", json::Value::Type::kString, "document").as_string();
  // The status triple is optional on input: trajectories and baselines
  // written before the field existed parse as complete runs.
  if (const json::Value* status = report.doc.find("status")) {
    if (!status->is_string()) bad_report("key 'status' has the wrong type");
    report.status = status->as_string();
    if (report.status != "complete" && report.status != "partial" &&
        report.status != "cancelled") {
      bad_report("unknown status '" + report.status + "'");
    }
  }
  if (const json::Value* completed = report.doc.find("points_completed")) {
    if (!completed->is_number()) bad_report("key 'points_completed' has the wrong type");
    report.points_completed = completed->as_u64();
  }
  if (const json::Value* total = report.doc.find("points_total")) {
    if (!total->is_number()) bad_report("key 'points_total' has the wrong type");
    report.points_total = total->as_u64();
  }
  require_key(report.doc, "config", json::Value::Type::kObject, "document");
  require_key(report.doc, "artifact_stats", json::Value::Type::kObject, "document");

  const json::Value& metrics =
      require_key(report.doc, "metrics", json::Value::Type::kObject, "document");
  require_key(metrics, "counters", json::Value::Type::kObject, "metrics");
  require_key(metrics, "gauges", json::Value::Type::kObject, "metrics");
  const json::Value& histograms =
      require_key(metrics, "histograms", json::Value::Type::kObject, "metrics");
  for (const auto& [name, h] : histograms.members()) {
    const char* ctx = "histogram";
    if (!h.is_object()) bad_report("histogram '" + name + "' is not an object");
    const json::Value& bounds = require_key(h, "bounds", json::Value::Type::kArray, ctx);
    const json::Value& counts = require_key(h, "counts", json::Value::Type::kArray, ctx);
    const json::Value& count = require_key(h, "count", json::Value::Type::kNumber, ctx);
    require_key(h, "sum", json::Value::Type::kNumber, ctx);
    if (counts.size() != bounds.size() + 1) {
      bad_report("histogram '" + name + "' needs bounds.size() + 1 bucket counts");
    }
    u64 total = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) total += counts.at(i).as_u64();
    if (total != count.as_u64()) {
      bad_report("histogram '" + name + "' bucket counts do not sum to its count");
    }
  }

  const json::Value& spans =
      require_key(report.doc, "spans", json::Value::Type::kArray, "document");
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const json::Value& span = spans.at(i);
    if (!span.is_object()) bad_report("span rows must be objects");
    require_key(span, "name", json::Value::Type::kString, "span");
    require_key(span, "count", json::Value::Type::kNumber, "span");
    require_key(span, "total_us", json::Value::Type::kNumber, "span");
    require_key(span, "max_us", json::Value::Type::kNumber, "span");
  }

  // The optional v2 telemetry block.  Validated only structurally (the shape
  // flatten() depends on); the strict on-grid/stride checks live in
  // TimeSeries::from_json, which is the consumer that replays samples.
  if (const json::Value* ts = report.doc.find("timeseries")) {
    if (!ts->is_object()) bad_report("key 'timeseries' has the wrong type");
    const json::Value& channels =
        require_key(*ts, "channels", json::Value::Type::kArray, "timeseries");
    const json::Value& cycles =
        require_key(*ts, "cycles", json::Value::Type::kArray, "timeseries");
    const json::Value& samples =
        require_key(*ts, "samples", json::Value::Type::kArray, "timeseries");
    require_key(*ts, "stride", json::Value::Type::kNumber, "timeseries");
    for (std::size_t i = 0; i < channels.size(); ++i) {
      if (!channels.at(i).is_string()) bad_report("timeseries channel names must be strings");
    }
    if (samples.size() != cycles.size()) {
      bad_report("timeseries needs one sample row per cycle");
    }
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const json::Value& row = samples.at(i);
      if (!row.is_array() || row.size() != channels.size()) {
        bad_report("timeseries sample rows must have one value per channel");
      }
    }
  }

  // The optional v2 flight block, validated to the shape flatten() reads;
  // the strict per-hop checks live in FlightRecorder::from_json.
  if (const json::Value* fl = report.doc.find("flight")) {
    if (!fl->is_object()) bad_report("key 'flight' has the wrong type");
    require_key(*fl, "budget", json::Value::Type::kNumber, "flight");
    require_key(*fl, "packets_seen", json::Value::Type::kNumber, "flight");
    const json::Value& traces = require_key(*fl, "traces", json::Value::Type::kArray, "flight");
    for (std::size_t i = 0; i < traces.size(); ++i) {
      const json::Value& t = traces.at(i);
      if (!t.is_object()) bad_report("flight traces must be objects");
      require_key(t, "outcome", json::Value::Type::kNumber, "flight trace");
      require_key(t, "hops", json::Value::Type::kArray, "flight trace");
    }
  }
  return report;
}

RunReport RunReport::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw InvalidArgument("run report: cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return parse(text.str());
  } catch (const InvalidArgument& e) {
    throw InvalidArgument(std::string(e.what()) + " (in '" + path + "')");
  }
}

std::vector<RunReport> load_report_lines(const std::string& path, std::ostream* warnings,
                                         std::size_t* num_skipped) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw InvalidArgument("run report: cannot open '" + path + "'");
  std::vector<RunReport> reports;
  std::string line;
  std::size_t line_no = 0;
  std::size_t skipped = 0;
  std::size_t first_bad_line = 0;
  std::string first_bad_error;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      reports.push_back(RunReport::parse(line));
    } catch (const std::exception& e) {
      // The torn line a crash leaves at the tail of a JSONL trajectory (or
      // any stray corruption): count it and keep going — one bad line must
      // not take every good run with it.
      ++skipped;
      if (first_bad_line == 0) {
        first_bad_line = line_no;
        first_bad_error = e.what();
      }
    }
  }
  // One summary line per file, however many lines were torn: a journal a
  // crash loop (or a truncated copy) filled with garbage must not flood the
  // caller's log with one warning per line.
  if (skipped > 0 && warnings != nullptr) {
    *warnings << "warning: " << path << ": skipped " << skipped << " torn line"
              << (skipped == 1 ? "" : "s") << " (first at line " << first_bad_line << ": "
              << first_bad_error << ")\n";
  }
  if (num_skipped != nullptr) *num_skipped = skipped;
  return reports;
}

namespace {

/// The config object minus the "threads" key: worker count is execution
/// metadata (outcomes are thread-invariant), so it must not break
/// comparability.  Everything else — shard_count included, since a sharded
/// run is different bits — stays part of the identity.
json::Value comparable_config(const json::Value& config) {
  json::Value out = json::Value::object();
  for (const auto& [key, value] : config.members()) {
    if (key == "threads") continue;
    out.set(key, value);
  }
  return out;
}

/// Short label for a numeric config key: "auto" for threads 0, the integer
/// otherwise, "" when the report predates the key.
std::string config_label(const RunReport& r, std::string_view key, bool zero_is_auto) {
  const json::Value* config = r.doc.find("config");
  const json::Value* v = config != nullptr ? config->find(key) : nullptr;
  if (v == nullptr || !v->is_number()) return "";
  const double d = v->as_double();
  if (zero_is_auto && d == 0.0) return "auto";
  std::ostringstream out;
  out << static_cast<long long>(d);
  return out.str();
}

}  // namespace

ReportDiff diff_reports(const RunReport& a, const RunReport& b, const DiffOptions& options) {
  if (a.name != b.name) {
    throw InvalidArgument("diff: reports name different runs ('" + a.name + "' vs '" + b.name +
                          "')");
  }
  if (options.require_matching_config &&
      comparable_config(a.doc.at("config")).dump() !=
          comparable_config(b.doc.at("config")).dump()) {
    throw InvalidArgument("diff: run configs differ for '" + a.name +
                          "': " + a.doc.at("config").dump() + " vs " + b.doc.at("config").dump());
  }

  ReportDiff diff;
  diff.name = a.name;
  diff.run_a = a.run_id;
  diff.run_b = b.run_id;
  diff.git_a = a.git_describe;
  diff.git_b = b.git_describe;
  diff.threads_a = config_label(a, "threads", /*zero_is_auto=*/true);
  diff.threads_b = config_label(b, "threads", /*zero_is_auto=*/true);
  diff.shard_count_a = config_label(a, "shard_count", /*zero_is_auto=*/false);
  diff.shard_count_b = config_label(b, "shard_count", /*zero_is_auto=*/false);

  const FlatReport fa = flatten(a, options);
  const FlatReport fb = flatten(b, options);
  for (const auto& [key, before] : fa.entries) {
    const auto it = fb.index.find(key);
    if (it == fb.index.end()) {
      diff.only_in_a.push_back(key);
      continue;
    }
    MetricDelta d;
    d.key = key;
    d.before = before;
    d.after = it->second;
    d.abs_delta = d.after - d.before;
    if (d.before != 0.0) {
      d.rel_delta = d.abs_delta / std::abs(d.before);
    } else if (d.abs_delta != 0.0) {
      d.rel_delta = std::copysign(std::numeric_limits<double>::infinity(), d.abs_delta);
    }
    diff.deltas.push_back(std::move(d));
  }
  for (const auto& [key, value] : fb.entries) {
    (void)value;
    if (!fa.index.contains(key)) diff.only_in_b.push_back(key);
  }
  return diff;
}

double metric_value(const RunReport& report, const std::string& key,
                    const DiffOptions& options) {
  const FlatReport flat = flatten(report, options);
  const auto it = flat.index.find(key);
  if (it == flat.index.end()) {
    throw InvalidArgument("report '" + report.name + "' has no metric '" + key + "'");
  }
  return it->second;
}

// --- thresholds --------------------------------------------------------------

bool glob_match(std::string_view pattern, std::string_view key) {
  std::size_t p = 0;
  std::size_t k = 0;
  std::size_t star = std::string_view::npos;
  std::size_t mark = 0;
  while (k < key.size()) {
    if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = k;
    } else if (p < pattern.size() && pattern[p] == key[k]) {
      ++p;
      ++k;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      k = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

namespace {

ThresholdRule parse_rule(const json::Value& v, const ThresholdRule& defaults) {
  BFLY_REQUIRE(v.is_object(), "thresholds: rule must be an object");
  ThresholdRule rule = defaults;
  for (const auto& [key, value] : v.members()) {
    if (key == "match") {
      rule.match = value.as_string();
    } else if (key == "warn_rel") {
      rule.warn_rel = value.as_double();
    } else if (key == "fail_rel") {
      rule.fail_rel = value.as_double();
    } else if (key == "abs_tol") {
      rule.abs_tol = value.as_double();
    } else if (key == "ignore") {
      rule.ignore = value.as_bool();
    } else {
      throw InvalidArgument("thresholds: unknown rule key '" + key + "'");
    }
  }
  BFLY_REQUIRE(rule.fail_rel >= rule.warn_rel,
               "thresholds: fail_rel must be >= warn_rel for '" + rule.match + "'");
  return rule;
}

}  // namespace

Thresholds Thresholds::parse(const json::Value& doc) {
  BFLY_REQUIRE(doc.is_object(), "thresholds: document must be an object");
  Thresholds t;
  if (const json::Value* fallback = doc.find("default")) {
    t.fallback = parse_rule(*fallback, ThresholdRule{});
  }
  if (const json::Value* rules = doc.find("rules")) {
    BFLY_REQUIRE(rules->is_array(), "thresholds: 'rules' must be an array");
    for (std::size_t i = 0; i < rules->size(); ++i) {
      t.rules.push_back(parse_rule(rules->at(i), ThresholdRule{}));
    }
  }
  return t;
}

Thresholds Thresholds::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw InvalidArgument("thresholds: cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return parse(json::Value::parse(text.str()));
}

const ThresholdRule& Thresholds::rule_for(std::string_view key) const {
  for (const ThresholdRule& rule : rules) {
    if (glob_match(rule.match, key)) return rule;
  }
  return fallback;
}

Severity classify(const MetricDelta& delta, const ThresholdRule& rule) {
  if (rule.ignore) return Severity::kPass;
  if (std::abs(delta.abs_delta) <= rule.abs_tol) return Severity::kPass;
  const double rel = std::abs(delta.rel_delta);
  if (rel <= rule.warn_rel) return Severity::kPass;
  if (rel <= rule.fail_rel) return Severity::kWarn;
  return Severity::kFail;
}

CheckResult check_diff(const ReportDiff& diff, const Thresholds& thresholds) {
  CheckResult result;
  for (const MetricDelta& delta : diff.deltas) {
    const ThresholdRule& rule = thresholds.rule_for(delta.key);
    if (rule.ignore) continue;
    CheckResult::Row row;
    row.delta = delta;
    row.severity = classify(delta, rule);
    if (row.severity == Severity::kWarn) ++result.num_warn;
    if (row.severity == Severity::kFail) ++result.num_fail;
    result.rows.push_back(std::move(row));
  }
  for (const std::string& key : diff.only_in_a) {
    if (thresholds.rule_for(key).ignore) continue;
    if (is_histogram_key(key)) {
      result.histograms_absent_in_b.push_back(key);
      ++result.num_warn;
    } else {
      result.missing_in_b.push_back(key);
      ++result.num_fail;
    }
  }
  for (const std::string& key : diff.only_in_b) {
    if (thresholds.rule_for(key).ignore) continue;
    result.new_in_b.push_back(key);
    ++result.num_warn;
  }
  return result;
}

CheckResult degrade_failures_to_warnings(CheckResult result) {
  result.num_warn = 0;
  result.num_fail = 0;
  for (CheckResult::Row& row : result.rows) {
    if (row.severity == Severity::kFail) row.severity = Severity::kWarn;
    if (row.severity == Severity::kWarn) ++result.num_warn;
  }
  // Missing-key verdicts fail for complete runs; for an interrupted one a
  // vanished metric is exactly what "partial" promises, so they warn too.
  result.num_warn += static_cast<int>(result.missing_in_b.size());
  result.num_warn += static_cast<int>(result.new_in_b.size());
  result.num_warn += static_cast<int>(result.histograms_absent_in_b.size());
  return result;
}

// --- rendering ---------------------------------------------------------------

std::string format_metric_value(double v) {
  char buf[40];
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

namespace {

std::string format_rel(double rel) {
  if (std::isinf(rel)) return rel > 0 ? "new" : "gone";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.2f%%", rel * 100.0);
  return buf;
}

const char* severity_label(Severity s) {
  switch (s) {
    case Severity::kPass: return "ok";
    case Severity::kWarn: return "WARN";
    case Severity::kFail: return "FAIL";
  }
  return "?";
}

}  // namespace

std::string render_diff_markdown(const ReportDiff& diff, const Thresholds* thresholds) {
  std::ostringstream out;
  out << "# bflyreport diff — " << diff.name << "\n\n";
  out << "runs: `" << diff.run_a << "` (" << diff.git_a << ") → `" << diff.run_b << "` ("
      << diff.git_b << ")\n";
  // Parallelism metadata, when either side recorded it: threads is
  // wall-clock-only context, shard_count names the engine variant.
  if (!diff.threads_a.empty() || !diff.threads_b.empty() || !diff.shard_count_a.empty() ||
      !diff.shard_count_b.empty()) {
    const auto arrow = [](const std::string& x, const std::string& y) {
      const std::string lhs = x.empty() ? "?" : x;
      const std::string rhs = y.empty() ? "?" : y;
      return lhs == rhs ? lhs : lhs + " → " + rhs;
    };
    out << "parallelism:";
    if (!diff.threads_a.empty() || !diff.threads_b.empty()) {
      out << " threads " << arrow(diff.threads_a, diff.threads_b);
    }
    if (!diff.shard_count_a.empty() || !diff.shard_count_b.empty()) {
      out << " shard_count " << arrow(diff.shard_count_a, diff.shard_count_b);
    }
    out << "\n";
  }
  out << "\n";
  out << "| metric | before | after | delta | delta% |";
  if (thresholds != nullptr) out << " status |";
  out << "\n|---|---:|---:|---:|---:|";
  if (thresholds != nullptr) out << "---|";
  out << "\n";
  for (const MetricDelta& d : diff.deltas) {
    const ThresholdRule* rule = thresholds != nullptr ? &thresholds->rule_for(d.key) : nullptr;
    if (rule != nullptr && rule->ignore) continue;
    out << "| " << d.key << " | " << format_metric_value(d.before) << " | "
        << format_metric_value(d.after) << " | " << format_metric_value(d.abs_delta) << " | "
        << format_rel(d.rel_delta) << " |";
    if (rule != nullptr) out << ' ' << severity_label(classify(d, *rule)) << " |";
    out << "\n";
  }
  for (const std::string& key : diff.only_in_a) {
    if (thresholds != nullptr && thresholds->rule_for(key).ignore) continue;
    out << "| " << key << " | present | missing | | |";
    // Matches check_diff's verdict: absent histograms warn, everything else
    // that vanished fails.
    if (thresholds != nullptr) out << (is_histogram_key(key) ? " WARN |" : " FAIL |");
    out << "\n";
  }
  for (const std::string& key : diff.only_in_b) {
    if (thresholds != nullptr && thresholds->rule_for(key).ignore) continue;
    out << "| " << key << " | missing | present | | |";
    if (thresholds != nullptr) out << " WARN |";
    out << "\n";
  }
  return out.str();
}

}  // namespace bfly::obs
