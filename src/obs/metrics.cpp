#include "obs/metrics.hpp"

#include <algorithm>

namespace bfly::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  BFLY_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket bound");
  BFLY_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                   std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end(),
               "histogram bounds must be strictly increasing");
}

void Histogram::observe(double v) {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

void Histogram::merge(std::span<const u64> counts, double sum) {
  BFLY_REQUIRE(counts.size() == buckets_.size(),
               "merge needs one count per bucket (including overflow)");
  u64 total = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    buckets_[i].fetch_add(counts[i], std::memory_order_relaxed);
    total += counts[i];
  }
  count_.fetch_add(total, std::memory_order_relaxed);
  sum_.fetch_add(sum, std::memory_order_relaxed);
}

std::vector<u64> Histogram::bucket_counts() const {
  std::vector<u64> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::percentile(double q) const { return estimate_percentile(bounds_, bucket_counts(), q); }

double estimate_percentile(std::span<const double> bounds, std::span<const u64> counts,
                           double q) {
  BFLY_REQUIRE(!bounds.empty() && counts.size() == bounds.size() + 1,
               "percentile needs bounds.size() + 1 bucket counts");
  BFLY_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q must be in [0, 1]");
  u64 total = 0;
  for (const u64 c : counts) total += c;
  if (total == 0) return 0.0;

  // Find the bucket holding cumulative mass q * total, then place the result
  // linearly within that bucket's value range.
  const double target = q * static_cast<double>(total);
  u64 cum_before = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double cum_after = static_cast<double>(cum_before + counts[i]);
    if (cum_after >= target) {
      if (i == bounds.size()) return bounds.back();  // unbounded overflow bucket
      const double lo = i == 0 ? std::min(0.0, bounds[0]) : bounds[i - 1];
      const double hi = bounds[i];
      const double within =
          std::max(0.0, target - static_cast<double>(cum_before)) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * within;
    }
    cum_before += counts[i];
  }
  return bounds.back();
}

std::vector<double> Histogram::linear_bounds(double start, double step, std::size_t count) {
  BFLY_REQUIRE(count >= 1 && step > 0, "linear bounds need count >= 1 and step > 0");
  std::vector<double> out(count);
  for (std::size_t i = 0; i < count; ++i) out[i] = start + static_cast<double>(i) * step;
  return out;
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t count) {
  BFLY_REQUIRE(count >= 1 && start > 0 && factor > 1,
               "exponential bounds need count >= 1, start > 0, factor > 1");
  std::vector<double> out(count);
  double v = start;
  for (std::size_t i = 0; i < count; ++i, v *= factor) out[i] = v;
  return out;
}

Counter* Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second.get();
  return counters_.emplace(std::string(name), std::make_unique<Counter>())
      .first->second.get();
}

Gauge* Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second.get();
  return gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first->second.get();
}

Histogram* Registry::histogram(std::string_view name, std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second.get();
  return histograms_
      .emplace(std::string(name), std::make_unique<Histogram>(std::move(bounds)))
      .first->second.get();
}

void Registry::record(TraceEvent ev) {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(ev);
}

MetricsSnapshot Registry::metrics_snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::Hist hist;
    hist.name = name;
    hist.bounds = h->bounds();
    hist.counts = h->bucket_counts();
    hist.count = h->count();
    hist.sum = h->sum();
    snap.histograms.push_back(std::move(hist));
  }
  return snap;
}

std::vector<TraceEvent> Registry::trace_events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::vector<CompletedSpan> Registry::completed_spans() const {
  const std::vector<TraceEvent> events = trace_events();
  std::vector<CompletedSpan> out;
  // Per-thread stacks of indices into `out`: a begin opens a span, the
  // matching end (same thread, LIFO) closes it.
  std::map<u64, std::vector<std::size_t>> stacks;
  for (const TraceEvent& ev : events) {
    std::vector<std::size_t>& stack = stacks[ev.tid];
    if (ev.phase == 'B') {
      CompletedSpan span;
      span.name = ev.name;
      span.tid = ev.tid;
      span.ts_us = ev.ts_us;
      span.dur_us = -1.0;  // still open
      span.depth = static_cast<int>(stack.size());
      stack.push_back(out.size());
      out.push_back(std::move(span));
    } else {
      BFLY_CHECK(!stack.empty(), "trace end event without a matching begin");
      CompletedSpan& span = out[stack.back()];
      stack.pop_back();
      span.dur_us = ev.ts_us - span.ts_us;
    }
  }
  // Drop spans still open at snapshot time (e.g. the caller's own scope).
  std::erase_if(out, [](const CompletedSpan& s) { return s.dur_us < 0; });
  return out;
}

u64 current_thread_id() {
  static std::atomic<u64> next{1};
  thread_local const u64 id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace bfly::obs
