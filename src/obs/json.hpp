// Minimal JSON document model for the observability subsystem.
//
// Run reports and Chrome trace files are JSON; round-trip tests parse what
// the writers emit.  Rather than pull in a dependency the container may not
// have, this is a small exact value type: objects preserve insertion order
// (so report output is deterministic and diffable across runs), numbers are
// doubles printed without a fractional part when integral (every counter we
// export is < 2^53, where doubles are exact), and the parser accepts exactly
// the JSON grammar (RFC 8259) with \uXXXX escapes decoded to UTF-8.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace bfly::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;  // null

  static Value boolean(bool b);
  static Value number(double d);
  static Value number(u64 v) { return number(static_cast<double>(v)); }
  static Value number(i64 v) { return number(static_cast<double>(v)); }
  static Value number(int v) { return number(static_cast<double>(v)); }
  static Value string(std::string s);
  static Value array();
  static Value object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }

  bool as_bool() const;
  double as_double() const;
  u64 as_u64() const;
  const std::string& as_string() const;

  /// Array / object element count.
  std::size_t size() const;

  /// Array element access (array only).
  const Value& at(std::size_t i) const;
  void push_back(Value v);

  /// Object member access.  `find` returns nullptr when absent; `at` throws.
  const Value* find(std::string_view key) const;
  const Value& at(std::string_view key) const;
  bool contains(std::string_view key) const { return find(key) != nullptr; }
  /// Inserts or overwrites; insertion order is preserved on output.
  void set(std::string_view key, Value v);
  const std::vector<std::pair<std::string, Value>>& members() const;

  /// Serializes compactly on one line (indent < 0) or pretty-printed with the
  /// given indent width.
  std::string dump(int indent = -1) const;

  /// Parses a complete JSON document; throws InvalidArgument with position
  /// information on malformed input or trailing garbage.  Implementation
  /// limits (also rejected with InvalidArgument): container nesting beyond
  /// 192 levels, and number literals outside double range.  Duplicate object
  /// keys keep the last value at the first key's position.
  static Value parse(std::string_view text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<std::pair<std::string, Value>> obj_;

  void dump_to(std::string* out, int indent, int depth) const;
};

/// Escapes a string body per JSON rules (no surrounding quotes).
std::string escape(std::string_view s);

}  // namespace bfly::json
