#include "obs/trace.hpp"

#include <ostream>

#include "obs/json.hpp"

namespace bfly::obs {

std::string chrome_trace_json(const Registry& registry) {
  json::Value events = json::Value::array();
  for (const TraceEvent& ev : registry.trace_events()) {
    json::Value e = json::Value::object();
    e.set("name", json::Value::string(ev.name));
    e.set("cat", json::Value::string("bfly"));
    e.set("ph", json::Value::string(std::string(1, ev.phase)));
    e.set("ts", json::Value::number(ev.ts_us));
    e.set("pid", json::Value::number(1));
    e.set("tid", json::Value::number(ev.tid));
    events.push_back(std::move(e));
  }
  json::Value doc = json::Value::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", json::Value::string("ms"));
  return doc.dump();
}

void write_chrome_trace(std::ostream& os, const Registry& registry) {
  os << chrome_trace_json(registry) << '\n';
}

}  // namespace bfly::obs
