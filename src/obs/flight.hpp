// Packet flight recorder: deterministic per-packet hop tracing for the
// saturation engines, plus the analytics built on the recorded journeys.
//
// A FlightRecorder stores, for a *sampled* subset of packets, the full hop
// sequence — (cycle, link, event) for inject / advance / misroute / wrap —
// and the terminal outcome (deliver or drop with reason).  The determinism
// contract mirrors obs::TimeSeries:
//
//   * Sampling is a pure function of packet identity.  Packets are numbered
//     0, 1, 2, ... in creation order (the engines are single-threaded per
//     point, so the stream is well defined), and packet `id` is admitted iff
//     SplitMix64(seed ^ id) falls under a fixed threshold — no wall clock, no
//     extra RNG draws, no thread-count dependence.  The admitted set is
//     therefore bitwise identical across sweep thread counts, across
//     checkpoint kill/resume replay, and between the pristine engine and the
//     faulty engine on an empty FaultSet (their creation streams coincide).
//   * Memory is bounded.  At most `sample_budget` packets are ever admitted
//     (the first `sample_budget` hash-passers — still a pure function of the
//     stream prefix), and each trace holds one small record per hop.
//
// The decomposition invariant (decompose_flight): for a delivered packet
// with h recorded hops in a dimension-n butterfly,
//
//     latency = end_cycle + 1 - injected_at            (the engines' metric)
//     queue_wait = sum of per-hop waits = latency - (h + 1)
//     transit    = n + 1                               (minimal journey)
//     detour     = h - n                               (n extra hops per wrap)
//
// and queue_wait + transit + detour == latency holds *exactly* (u64
// arithmetic, no epsilon) — decompose_flight recomputes queue_wait from the
// recorded hop cycles and throws InternalError if the books don't balance.
//
// Physical-path attribution: flight_distance() maps each hop's link index
// through a caller-supplied wire-length table (see layout's
// link_wire_lengths()) to the packet's total distance traveled in routing
// tracks.  This file stays below the layout/routing layers, so the table is
// passed as a plain span.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "util/bits.hpp"

namespace bfly::obs {

/// How a packet entered the link queue of one hop.
enum class FlightEvent : int {
  kInject = 0,    ///< fresh injection at stage 0
  kAdvance = 1,   ///< normal forward hop onto the wanted link
  kMisroute = 2,  ///< forward hop deflected onto the unwanted link
  kWrap = 3,      ///< re-entry at stage 0 after missing delivery
};

/// Terminal state of a trace.
enum class FlightOutcome : int {
  kInFlight = 0,   ///< still resident when the run ended
  kDelivered = 1,
  kDropped = 2,
};

/// Drop reason codes; values match fault::drop_index(DropReason) so traces
/// and FaultTally agree without obs depending on the fault layer.
inline constexpr u64 kFlightDropEndpointDead = 0;
inline constexpr u64 kFlightDropNoAliveLink = 1;
inline constexpr u64 kFlightDropBudgetExhausted = 2;
inline constexpr u64 kFlightDropQueueFull = 3;
inline constexpr u64 kFlightDropKilledByFault = 4;  ///< link died mid-flight

/// One hop: the packet entered `link`'s FIFO during `cycle` via `event`.
struct FlightHop {
  u64 cycle = 0;
  u64 link = 0;  ///< dense link index, same layout as routing's link_index()
  FlightEvent event = FlightEvent::kInject;
};

/// The full recorded journey of one sampled packet.
struct FlightTrace {
  u64 packet_id = 0;    ///< creation-order index within the run
  u64 src = 0;          ///< injection row
  u64 dst = 0;          ///< destination row
  u64 injected_at = 0;  ///< creation cycle
  std::vector<FlightHop> hops;
  FlightOutcome outcome = FlightOutcome::kInFlight;
  u64 end_cycle = 0;    ///< delivery/drop cycle (when outcome != kInFlight)
  u64 drop_reason = 0;  ///< kFlightDrop* code (when outcome == kDropped)
};

/// The per-run sample store the engines record into (via
/// detail::FlightProbe).  Default-constructed recorders are disabled
/// (budget 0) and never admit a packet.
class FlightRecorder {
 public:
  /// `expected_packets` sizes the admission threshold: the hash gate targets
  /// ~4x the budget so the hard cap (first `sample_budget` passers) binds
  /// deterministically instead of the tail of the run going unsampled.
  /// `n`/`rows` describe the butterfly the traces come from; they ride along
  /// so the analytics and `bflyreport paths` are self-contained.
  explicit FlightRecorder(u64 sample_budget = 0, u64 seed = 0, u64 expected_packets = 0,
                          int n = 0, u64 rows = 0);

  bool enabled() const { return budget_ > 0; }
  bool empty() const { return traces_.empty(); }

  // --- engine hooks (single-threaded; see detail::FlightProbe) -------------

  /// Called once per created packet, in creation order.  Returns the trace
  /// handle (index + 1) when the packet is sampled, 0 otherwise.
  u64 on_packet(u64 cycle, u64 src, u64 dst);
  /// Records one hop on a sampled packet (handle != 0 required).
  void on_hop(u64 handle, u64 cycle, u64 link, FlightEvent event);
  void on_delivered(u64 handle, u64 cycle);
  void on_dropped(u64 handle, u64 cycle, u64 drop_reason);

  // --- accessors ------------------------------------------------------------

  u64 sample_budget() const { return budget_; }
  u64 seed() const { return seed_; }
  u64 threshold() const { return threshold_; }
  int n() const { return n_; }
  u64 rows() const { return rows_; }
  /// Total packets presented to on_packet (sampled or not).
  u64 packets_seen() const { return packets_seen_; }
  const std::vector<FlightTrace>& traces() const { return traces_; }

  /// Stable JSON encoding (the checkpoint journal's v3 `flight` payload and
  /// the run report's optional `flight` block).  Cycles, links, and ids are
  /// all < 2^53, so the double-backed JSON numbers are exact; the threshold
  /// is a full u64 and is carried as a 16-digit hex string.
  json::Value to_json() const;
  /// Strictly validating decoder; throws InvalidArgument on any shape or
  /// range violation (hop arity, event/outcome codes, non-increasing hop
  /// cycles, traces over budget).
  static FlightRecorder from_json(const json::Value& v);

  /// Exact equality: configuration, packet counter, and every trace field of
  /// every hop — the replay-identity contract (all integers, so bitwise).
  friend bool operator==(const FlightRecorder& a, const FlightRecorder& b);

 private:
  u64 budget_ = 0;
  u64 seed_ = 0;
  u64 threshold_ = 0;  ///< admit iff SplitMix64(seed ^ id) <= threshold
  int n_ = 0;
  u64 rows_ = 0;
  u64 packets_seen_ = 0;
  std::vector<FlightTrace> traces_;
};

/// Latency decomposition of one delivered trace (see file comment).  The
/// three parts sum exactly to `latency` — recomputed from the hop cycles and
/// checked, so inconsistent traces throw instead of decomposing plausibly.
struct FlightDecomposition {
  u64 latency = 0;
  u64 queue_wait = 0;  ///< cycles spent waiting behind other packets
  u64 transit = 0;     ///< n + 1: the congestion-free minimum
  u64 detour = 0;      ///< h - n: extra hops from wraps (n per wrap)
};
FlightDecomposition decompose_flight(const FlightTrace& trace, int n);

/// Per-hop queue waits (cycles spent in each link's FIFO beyond the one
/// cycle the hop itself takes).  Terminated traces yield one wait per hop;
/// in-flight traces omit the last hop (its departure is unknown).
std::vector<u64> flight_hop_waits(const FlightTrace& trace);

/// Wait/visit aggregation over a sampled set: which links and stages soak up
/// the queueing.  `rows` maps links to stages (stage = link / (2 * rows)).
struct LinkBlame {
  u64 link = 0;
  int stage = 0;
  u64 visits = 0;
  u64 wait_sum = 0;
  u64 wait_max = 0;
  u64 wait_p99 = 0;  ///< 99th-percentile per-visit wait (exact order statistic)
};
struct FlightBlame {
  std::vector<LinkBlame> links;  ///< visited links, heaviest wait_sum first
  std::vector<u64> stage_wait_sum;
  std::vector<u64> stage_visits;
};
FlightBlame flight_blame(std::span<const FlightTrace> traces, int n, u64 rows);

/// Distance traveled in routing tracks: the sum of `link_lengths[hop.link]`
/// over the trace's hops.  `link_lengths` is indexed by dense link id (see
/// layout's link_wire_lengths()).
i64 flight_distance(const FlightTrace& trace, std::span<const i64> link_lengths);

/// Chrome trace-event JSON ("JSON Object Format", the same document shape as
/// obs::chrome_trace_json) with one track (tid) per sampled packet: each hop
/// becomes a complete 'X' slice whose ts/dur are in cycle units, and the
/// terminal deliver/drop becomes an instant event.  Opens directly in
/// https://ui.perfetto.dev.  `rows` (optional, 0 = unknown) adds the stage to
/// each slice name.
std::string flight_chrome_trace_json(std::span<const FlightTrace> traces, u64 rows = 0);

}  // namespace bfly::obs
