#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace bfly::json {

Value Value::boolean(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::number(double d) {
  Value v;
  v.type_ = Type::kNumber;
  v.num_ = d;
  return v;
}

Value Value::string(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.str_ = std::move(s);
  return v;
}

Value Value::array() {
  Value v;
  v.type_ = Type::kArray;
  return v;
}

Value Value::object() {
  Value v;
  v.type_ = Type::kObject;
  return v;
}

bool Value::as_bool() const {
  BFLY_REQUIRE(type_ == Type::kBool, "json: not a bool");
  return bool_;
}

double Value::as_double() const {
  BFLY_REQUIRE(type_ == Type::kNumber, "json: not a number");
  return num_;
}

u64 Value::as_u64() const {
  BFLY_REQUIRE(type_ == Type::kNumber && num_ >= 0 && num_ == std::floor(num_),
               "json: not a non-negative integer");
  return static_cast<u64>(num_);
}

const std::string& Value::as_string() const {
  BFLY_REQUIRE(type_ == Type::kString, "json: not a string");
  return str_;
}

std::size_t Value::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  BFLY_REQUIRE(false, "json: size() on a scalar");
  return 0;
}

const Value& Value::at(std::size_t i) const {
  BFLY_REQUIRE(type_ == Type::kArray && i < arr_.size(), "json: array index out of range");
  return arr_[i];
}

void Value::push_back(Value v) {
  BFLY_REQUIRE(type_ == Type::kArray, "json: push_back on a non-array");
  arr_.push_back(std::move(v));
}

const Value* Value::find(std::string_view key) const {
  BFLY_REQUIRE(type_ == Type::kObject, "json: member lookup on a non-object");
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  BFLY_REQUIRE(v != nullptr, "json: missing key '" + std::string(key) + "'");
  return *v;
}

void Value::set(std::string_view key, Value v) {
  BFLY_REQUIRE(type_ == Type::kObject, "json: set on a non-object");
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(std::string(key), std::move(v));
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  BFLY_REQUIRE(type_ == Type::kObject, "json: members() on a non-object");
  return obj_;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_number(std::string* out, double d) {
  // Integral doubles (all exported counters/ids) print without a fraction;
  // everything else gets enough digits to round-trip.
  if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    *out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    *out += buf;
  }
}

void append_indent(std::string* out, int indent, int depth) {
  out->push_back('\n');
  out->append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

}  // namespace

void Value::dump_to(std::string* out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  switch (type_) {
    case Type::kNull: *out += "null"; return;
    case Type::kBool: *out += bool_ ? "true" : "false"; return;
    case Type::kNumber: append_number(out, num_); return;
    case Type::kString:
      out->push_back('"');
      *out += escape(str_);
      out->push_back('"');
      return;
    case Type::kArray: {
      out->push_back('[');
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out->push_back(',');
        if (pretty) append_indent(out, indent, depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      if (pretty && !arr_.empty()) append_indent(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      out->push_back('{');
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out->push_back(',');
        if (pretty) append_indent(out, indent, depth + 1);
        out->push_back('"');
        *out += escape(obj_[i].first);
        *out += pretty ? "\": " : "\":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      if (pretty && !obj_.empty()) append_indent(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(&out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    require(pos_ == text_.size(), "trailing characters after document");
    return v;
  }

 private:
  // Containers nest recursively; bound the depth so adversarial input (a run
  // report is often fetched from CI artifacts) cannot overflow the stack.
  static constexpr int kMaxDepth = 192;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("json parse error at offset " + std::to_string(pos_) + ": " + what);
  }
  void require(bool cond, const char* what) const {
    if (!cond) fail(what);
  }

  char peek() const {
    require(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }
  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }
  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }
  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
      case '[': {
        require(depth_ < kMaxDepth, "nesting too deep");
        ++depth_;
        Value v = c == '{' ? parse_object() : parse_array();
        --depth_;
        return v;
      }
      case '"': return Value::string(parse_string());
      case 't':
        require(consume_literal("true"), "invalid literal");
        return Value::boolean(true);
      case 'f':
        require(consume_literal("false"), "invalid literal");
        return Value::boolean(false);
      case 'n':
        require(consume_literal("null"), "invalid literal");
        return Value();
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value obj = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      // Duplicate keys: last value wins (RFC 8259 leaves this to the
      // implementation; set() overwrites in place, keeping first-seen order).
      obj.set(key, parse_value());
      skip_ws();
      const char c = next();
      if (c == '}') return obj;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  Value parse_array() {
    expect('[');
    Value arr = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') return arr;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = next();
      if (c == '"') return out;
      if (c != '\\') {
        require(static_cast<unsigned char>(c) >= 0x20, "unescaped control character");
        out.push_back(c);
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': append_utf8(&out, parse_hex4()); break;
        default: fail("invalid escape");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    return v;
  }

  static void append_utf8(std::string* out, unsigned cp) {
    // Surrogate pairs are not combined (our writers never emit them); each
    // \uXXXX is encoded independently, which is sufficient for the BMP.
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    require(pos_ > start, "expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("malformed number");
    }
    // Magnitudes beyond double range would round-trip as the non-JSON token
    // "inf"; reject them instead of silently saturating.
    if (std::isinf(d)) {
      pos_ = start;
      fail("number out of double range");
    }
    return Value::number(d);
  }
};

}  // namespace

Value Value::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace bfly::json
