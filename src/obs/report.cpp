#include "obs/report.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <ostream>
#include <random>

namespace bfly::obs {

// git_describe() is defined in a TU generated at build time by
// cmake/git_describe.cmake (declared in report.hpp), so every build — not
// just every configure — stamps reports with the current revision.

std::string make_run_id() {
  // Time-seeded rather than fully random so ids sort roughly by run order;
  // the random_device tail guards against same-tick collisions.
  const u64 ticks = static_cast<u64>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  std::random_device rd;
  const u64 id = (ticks << 16) ^ rd() ^ (static_cast<u64>(rd()) << 32);
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(id));
  return buf;
}

json::Value build_run_report(const Registry& registry, const ReportOptions& options) {
  const MetricsSnapshot snap = registry.metrics_snapshot();

  json::Value counters = json::Value::object();
  for (const auto& [name, value] : snap.counters) {
    counters.set(name, json::Value::number(value));
  }
  json::Value gauges = json::Value::object();
  for (const auto& [name, value] : snap.gauges) {
    gauges.set(name, json::Value::number(value));
  }
  json::Value histograms = json::Value::object();
  for (const MetricsSnapshot::Hist& h : snap.histograms) {
    json::Value bounds = json::Value::array();
    for (const double b : h.bounds) bounds.push_back(json::Value::number(b));
    json::Value counts = json::Value::array();
    for (const u64 c : h.counts) counts.push_back(json::Value::number(c));
    json::Value hist = json::Value::object();
    hist.set("bounds", std::move(bounds));
    hist.set("counts", std::move(counts));
    hist.set("count", json::Value::number(h.count));
    hist.set("sum", json::Value::number(h.sum));
    histograms.set(h.name, std::move(hist));
  }
  json::Value metrics = json::Value::object();
  metrics.set("counters", std::move(counters));
  metrics.set("gauges", std::move(gauges));
  metrics.set("histograms", std::move(histograms));

  // Spans are aggregated per name: a bench loop can produce hundreds of
  // thousands of instances of the same phase, and the report must stay one
  // comparable line.  The full per-instance stream is the Chrome trace
  // export's job (obs/trace.hpp).
  struct SpanAgg {
    u64 count = 0;
    double total_us = 0.0;
    double max_us = 0.0;
  };
  std::map<std::string, SpanAgg> by_name;
  for (const CompletedSpan& s : registry.completed_spans()) {
    SpanAgg& agg = by_name[s.name];
    ++agg.count;
    agg.total_us += s.dur_us;
    agg.max_us = std::max(agg.max_us, s.dur_us);
  }
  json::Value spans = json::Value::array();
  for (const auto& [name, agg] : by_name) {
    json::Value span = json::Value::object();
    span.set("name", json::Value::string(name));
    span.set("count", json::Value::number(agg.count));
    span.set("total_us", json::Value::number(agg.total_us));
    span.set("max_us", json::Value::number(agg.max_us));
    spans.push_back(std::move(span));
  }

  json::Value report = json::Value::object();
  // Reports without telemetry stay at version 1 so v1-only consumers keep
  // working; the optional "timeseries" and "flight" blocks are the only v2
  // additions (both optional, so v2 consumers tolerate either's absence).
  report.set("schema_version", json::Value::number(
                                   options.timeseries.is_null() && options.flight.is_null()
                                       ? 1
                                       : 2));
  report.set("name", json::Value::string(options.name));
  report.set("run_id", json::Value::string(make_run_id()));
  report.set("git_describe", json::Value::string(git_describe()));
  report.set("status", json::Value::string(options.status));
  report.set("points_completed", json::Value::number(options.points_completed));
  report.set("points_total", json::Value::number(options.points_total));
  report.set("config", options.config);
  report.set("metrics", std::move(metrics));
  report.set("spans", std::move(spans));
  report.set("artifact_stats", options.artifact_stats);
  if (!options.timeseries.is_null()) {
    report.set("timeseries", options.timeseries);
  }
  if (!options.flight.is_null()) {
    report.set("flight", options.flight);
  }
  return report;
}

void write_report_line(std::ostream& os, const Registry& registry,
                       const ReportOptions& options) {
  os << build_run_report(registry, options).dump() << '\n';
}

void write_report_pretty(std::ostream& os, const Registry& registry,
                         const ReportOptions& options) {
  os << build_run_report(registry, options).dump(2) << '\n';
}

}  // namespace bfly::obs
