// Structured run reports: one machine-readable JSON document per run with a
// stable schema, so BENCH_*.json trajectories are comparable across PRs.
//
// Schema — every report object has these top-level keys:
//
//   {
//     "schema_version": 1 | 2,
//     "name":         "<tool or bench name>",
//     "run_id":       "<16 hex chars, unique per process run>",
//     "git_describe": "<git describe --always --dirty at build time>",
//     "status":       "complete" | "partial" | "cancelled",
//     "points_completed": <u64>,   // sweep points with a real outcome
//     "points_total":     <u64>,   // sweep points requested (0 = no sweeps)
//     "config":       { ... caller-provided run parameters ... },
//     "metrics": {
//       "counters":   { "<name>": <u64>, ... },
//       "gauges":     { "<name>": <double>, ... },
//       "histograms": { "<name>": { "bounds": [...], "counts": [...],
//                                    "count": <u64>, "sum": <double> }, ... }
//     },
//     "spans":        [ { "name", "count", "total_us", "max_us" }, ... ],
//     "artifact_stats": { ... caller-provided measured artifact facts ... },
//     "timeseries":   { ... optional cycle-resolved telemetry block ... },
//     "flight":       { ... optional per-packet flight-recorder block ... }
//   }
//
// Version 2 (current) added the optional "timeseries" block — the
// TimeSeries::to_json() encoding of one representative sweep point's
// cycle-resolved samples (obs/timeseries.hpp) — and the optional "flight"
// block, the FlightRecorder::to_json() encoding of one representative
// point's per-packet hop traces (obs/flight.hpp).  A report carrying
// neither is emitted as version 1, so v1-only consumers keep parsing every
// report that carries nothing new; RunReport::parse (obs/diff.hpp) accepts
// both versions and tolerates absent blocks.
//
// Spans are aggregated per name (sorted by name) so a report stays one
// comparable line even when a bench loop executes a phase 10^5 times; the
// per-instance stream with nesting is the Chrome trace export (obs/trace.hpp).
//
// Histogram invariant: counts has bounds.size() + 1 entries (trailing
// overflow bucket) and sums to count — consumers can reconstruct totals
// without trusting a separate field.
//
// The "status" triple is how graceful degradation surfaces in the schema: a
// run whose sweeps were cancelled or lost points reports "cancelled" /
// "partial" (fed from exec::SweepStatus), and diff consumers downgrade
// failures against such reports to warnings (obs/diff.hpp,
// degrade_failures_to_warnings).  Reports written before the field existed
// parse as "complete" with zero counts — the keys are optional on input,
// always present on output.
//
// Writers: write_report_line() emits the compact single-line form (JSONL:
// append one line per run to a log and every line is a complete document);
// write_report_pretty() emits the same document indented for humans.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace bfly::obs {

struct ReportOptions {
  /// Tool/bench name, e.g. "bench_routing".
  std::string name;
  /// Run completion status: "complete", "partial", or "cancelled" (see the
  /// schema comment; exec::to_string(SweepStatus) produces these).
  std::string status = "complete";
  /// Sweep-point progress behind `status`; both 0 when the run had no sweeps.
  u64 points_completed = 0;
  u64 points_total = 0;
  /// Run parameters (free-form object; keep it flat and stable).
  json::Value config = json::Value::object();
  /// Measured facts about constructed artifacts (areas, track counts, ...).
  json::Value artifact_stats = json::Value::object();
  /// Optional cycle-resolved telemetry block (TimeSeries::to_json()).  Null
  /// (the default) keeps the report at schema version 1; attaching a block
  /// bumps the emitted version to 2.
  json::Value timeseries = json::Value();
  /// Optional per-packet flight-recorder block (FlightRecorder::to_json()).
  /// Same versioning rule as `timeseries`: null stays v1-compatible,
  /// attaching bumps the emitted version to 2.
  json::Value flight = json::Value();
};

/// The `git describe --always --dirty --tags` of the source tree, captured
/// at *build* time (cmake/git_describe.cmake generates the defining TU on
/// every build); "unknown" when the build is not inside a git checkout.
const char* git_describe();

/// 16 lowercase hex chars; unique across runs (time-seeded).
std::string make_run_id();

/// Assembles the report document from a registry snapshot (schema version 1,
/// or 2 when options.timeseries is attached).
json::Value build_run_report(const Registry& registry, const ReportOptions& options);

/// Compact single-line JSON + newline: the machine interface (stdout).
void write_report_line(std::ostream& os, const Registry& registry,
                       const ReportOptions& options);

/// Indented JSON + newline: the human-inspection form.
void write_report_pretty(std::ostream& os, const Registry& registry,
                         const ReportOptions& options);

}  // namespace bfly::obs
