// Run-report analytics: load schema v1/v2 run reports (obs/report.hpp),
// compute typed deltas between two runs, classify them against thresholds,
// and render the result as a markdown/ASCII delta table.
//
// The comparable surface of a report is flattened into dotted keys:
//
//   counters.<name>                       u64 counter value
//   gauges.<name>                         gauge value
//   histograms.<name>.count               observation count
//   histograms.<name>.p50 / .p95 / ...    interpolated percentile
//                                         (estimate_percentile, metrics.hpp)
//   spans.<name>.count                    span instances
//   spans.<name>.total_us / .max_us       span timing (noisy; see Thresholds)
//   artifact_stats.<key>[.<subkey>...]    numeric artifact facts
//   timeseries.samples / .stride          v2 telemetry block summary
//   timeseries.<channel>.mean / .last     per-channel summary (never the raw
//                                         rows — those are cycle-indexed and
//                                         incomparable across configs)
//   flight.sampled / .packets_seen        v2 flight block summary: traces
//   flight.delivered / .dropped / .hops   recorded, their outcomes, and total
//                                         hops (all deterministic per config)
//
// Two reports are comparable only when their schema version, name, and
// `config` object match — a delta between runs with different parameters is
// meaningless and diff_reports() refuses to compute one.  Timing keys are
// expected to move run to run; the Thresholds machinery (glob rules with
// relative tolerances plus an absolute noise floor) is how callers separate
// "CI noise" from "regression".  The `bflyreport` CLI (tools/) is the
// command-line face of this header; the CI baseline gate is `bflyreport
// check` against bench/baselines/.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace bfly::obs {

/// A parsed and structurally validated run report (schema version 1 or 2;
/// v2 adds only the optional "timeseries" block, tolerated when absent).
struct RunReport {
  json::Value doc;
  std::string name;
  std::string run_id;
  std::string git_describe;
  /// Run completion status ("complete" / "partial" / "cancelled") and sweep
  /// progress.  Optional on input for back-compat with reports written
  /// before the field existed: missing keys parse as "complete" / 0 / 0.
  std::string status = "complete";
  u64 points_completed = 0;
  u64 points_total = 0;

  bool is_complete() const { return status == "complete"; }

  /// Parses + validates one report document (the compact or pretty form).
  /// Throws InvalidArgument naming the offending key on structural problems:
  /// wrong schema version, missing/mistyped top-level keys, an unknown
  /// status value, or histograms whose bucket counts do not sum to their
  /// count.
  static RunReport parse(std::string_view text);
  /// parse() on the full contents of `path`.
  static RunReport load(const std::string& path);
};

/// Loads a JSONL trajectory (one report per line) tolerantly: blank lines
/// are ignored, and lines that fail to parse — the torn tail a crash leaves
/// behind, or stray corruption — are skipped.  Skips are reported on
/// `warnings` (when non-null) as exactly ONE summary line per file
/// ("skipped N torn lines", naming the first offending 1-based line number
/// and its parse error), so a journal full of garbage cannot flood the log
/// with per-line noise.  `num_skipped` (when non-null) receives the exact
/// skip count.  Throws InvalidArgument only when the
/// file cannot be opened; an all-corrupt file simply returns an empty vector
/// and lets the caller decide (bflyreport exits nonzero only when *nothing*
/// parses).
std::vector<RunReport> load_report_lines(const std::string& path,
                                         std::ostream* warnings = nullptr,
                                         std::size_t* num_skipped = nullptr);

/// One compared metric.  `rel_delta` is (after - before) / |before|: 0 when
/// both sides are 0, and +-infinity when the baseline is 0 but the value
/// moved (rendered as "new"; classification treats it as exceeding any
/// relative tolerance, so only abs_tol can excuse it).
struct MetricDelta {
  std::string key;
  double before = 0.0;
  double after = 0.0;
  double abs_delta = 0.0;
  double rel_delta = 0.0;
};

struct DiffOptions {
  /// Percentiles exported per histogram (labelled pNN in the key).
  std::vector<double> percentiles = {0.5, 0.95, 0.99};
  /// Refuse to diff reports whose `config` objects differ (recommended).
  /// The "threads" config key is exempt: it is execution metadata — per-point
  /// outcomes are thread-invariant, so runs differing only in worker count
  /// are comparable (the diff surfaces both values as run metadata instead).
  /// "shard_count" is NOT exempt: a sharded run produces different bits than
  /// a serial one, so it stays part of the comparability identity.
  bool require_matching_config = true;
};

struct ReportDiff {
  std::string name;
  std::string run_a;
  std::string run_b;
  std::string git_a;
  std::string git_b;
  /// Parallelism run metadata pulled from each side's config: the "threads"
  /// and "shard_count" keys rendered as short labels ("auto" for threads 0,
  /// empty when the report predates the key).  Informational only — threads
  /// never affects outcomes, and a shard_count difference already refuses
  /// the diff — but surfacing them answers "what ran where" at a glance.
  std::string threads_a;
  std::string threads_b;
  std::string shard_count_a;
  std::string shard_count_b;
  std::vector<MetricDelta> deltas;
  /// Keys present on one side only (metric added/removed between runs).
  std::vector<std::string> only_in_a;
  std::vector<std::string> only_in_b;
};

/// Computes the typed delta table between two comparable runs (a = before /
/// baseline, b = after / candidate).  Throws InvalidArgument when the reports
/// are not comparable (schema, name, or — unless disabled — config mismatch).
ReportDiff diff_reports(const RunReport& a, const RunReport& b, const DiffOptions& options = {});

/// Looks up one flattened key (see the file comment for the key scheme) in a
/// report; throws InvalidArgument when the report has no such metric.
double metric_value(const RunReport& report, const std::string& key,
                    const DiffOptions& options = {});

// --- threshold classification ------------------------------------------------

enum class Severity { kPass, kWarn, kFail };

/// One classification rule.  `match` is a glob over flattened keys ('*'
/// matches any run of characters, including dots).  A delta passes a rule
/// when |abs_delta| <= abs_tol or |rel_delta| <= warn_rel; it warns up to
/// fail_rel; beyond that it fails.  warn_rel = fail_rel = 0 therefore means
/// "must match exactly" — the right setting for deterministic artifact stats.
struct ThresholdRule {
  std::string match = "*";
  double warn_rel = 0.0;
  double fail_rel = 0.0;
  /// Absolute noise floor: deltas at most this large always pass (timing keys
  /// in the low microseconds jitter by large relative factors).
  double abs_tol = 0.0;
  /// Skip matching keys entirely (machine-dependent values).
  bool ignore = false;
};

/// Ordered rule list; the first matching rule wins, `fallback` applies when
/// none match.  File format (JSON):
///
///   { "default": { "warn_rel": 0, "fail_rel": 0, "abs_tol": 0 },
///     "rules": [ { "match": "spans.*.total_us", "warn_rel": 0.25,
///                  "fail_rel": 3.0, "abs_tol": 20000 },
///                { "match": "artifact_stats.obs_overhead_percent",
///                  "ignore": true } ] }
struct Thresholds {
  ThresholdRule fallback;
  std::vector<ThresholdRule> rules;

  static Thresholds parse(const json::Value& doc);
  static Thresholds load(const std::string& path);

  const ThresholdRule& rule_for(std::string_view key) const;
};

/// True iff `key` matches the '*'-wildcard pattern.
bool glob_match(std::string_view pattern, std::string_view key);

Severity classify(const MetricDelta& delta, const ThresholdRule& rule);

/// A classified diff: every delta paired with its severity, plus missing-key
/// verdicts (a key that disappeared from the candidate fails — a measured
/// artifact vanished; a new key warns — the baseline needs a refresh).
/// Ignored keys are dropped.
///
/// Histogram keys are the exception to the missing-is-FAIL rule: a histogram
/// present in the baseline but absent from the candidate lands in
/// `histograms_absent_in_b` as a WARN, not a FAIL.  Replay-heavy runs (full
/// checkpoint replay records no per-event observations) legitimately produce
/// reports without histograms while every artifact stat still matches —
/// artifact_percentiles already tolerates the absence, and the gate should
/// flag it, not explode.
struct CheckResult {
  struct Row {
    MetricDelta delta;
    Severity severity = Severity::kPass;
  };
  std::vector<Row> rows;
  std::vector<std::string> missing_in_b;  ///< fail unless ignored
  std::vector<std::string> new_in_b;      ///< warn unless ignored
  /// histograms.* keys present only in the baseline: warn unless ignored.
  std::vector<std::string> histograms_absent_in_b;
  int num_warn = 0;
  int num_fail = 0;

  bool ok() const { return num_fail == 0; }
};

CheckResult check_diff(const ReportDiff& diff, const Thresholds& thresholds);

/// Graceful degradation for non-complete candidates: returns `result` with
/// every FAIL row downgraded to WARN (counts re-tallied).  `bflyreport
/// check`/`diff` apply this when the candidate report's status is "partial"
/// or "cancelled" — an interrupted run legitimately moves or loses metrics,
/// so the baseline gate should flag it, not explode.
CheckResult degrade_failures_to_warnings(CheckResult result);

// --- rendering ---------------------------------------------------------------

/// Markdown/ASCII delta table (one row per metric, sections in key order).
/// With `thresholds`, a status column (ok / WARN / FAIL) is appended and
/// ignored keys are omitted.
std::string render_diff_markdown(const ReportDiff& diff, const Thresholds* thresholds = nullptr);

/// Compact fixed-width number formatting shared by the renderers ("1.25M"
/// style for wide magnitudes, full digits for small integers).
std::string format_metric_value(double v);

}  // namespace bfly::obs
