// bfly::obs — the measurement substrate: a thread-safe metrics registry
// (counters, gauges, fixed-bucket histograms) plus the trace-event sink the
// RAII span tracer (obs/trace.hpp) writes into.
//
// Design constraints, in order:
//  1. Zero cost when disabled.  Compile-time: -DBFLY_OBS_ENABLED=0 turns
//     every instrumentation helper into a constant-folded no-op.  Runtime:
//     the global Registry pointer defaults to nullptr and every helper
//     null-checks it, so an uninstrumented process pays one predictable
//     branch per *hoisted handle lookup*, not per event.
//  2. Cheap hot-path increments.  Handles (Counter*, Histogram*) are stable
//     pointers; callers look them up once outside their loops and then do
//     relaxed atomic adds — safe from any thread, no lock, no contention
//     beyond the cache line.  Suitable for the multithreaded link-load
//     census and the per-cycle routing simulator.
//  3. Exact export.  Snapshots are taken under the registry lock; histogram
//     bucket counts always sum to the observation count, so downstream
//     consumers can reconstruct totals (test_obs round-trips this).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/bits.hpp"
#include "util/check.hpp"

#ifndef BFLY_OBS_ENABLED
#define BFLY_OBS_ENABLED 1
#endif

namespace bfly::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(u64 delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  u64 value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<u64> value_{0};
};

/// Last-write-wins instantaneous value (sizes, ratios, configuration).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are strictly increasing inclusive upper
/// bounds; observations above the last bound land in an overflow bucket, so
/// the bucket counts always sum to count().
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  /// Bucket `v` falls into; bounds().size() is the overflow bucket.
  std::size_t bucket_index(double v) const {
    return static_cast<std::size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  }

  /// Bulk merge of pre-bucketed observations: `counts` must have
  /// bounds().size() + 1 entries (see LocalHistogram); `sum` is the value sum
  /// of those observations.
  void merge(std::span<const u64> counts, double sum);

  /// bounds().size() + 1 buckets (trailing overflow bucket).
  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<u64> bucket_counts() const;
  u64 count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// estimate_percentile() over this histogram's current bucket counts.
  double percentile(double q) const;

  /// [start, start+step, ..., start+(count-1)*step]
  static std::vector<double> linear_bounds(double start, double step, std::size_t count);
  /// [start, start*factor, ..., start*factor^(count-1)]
  static std::vector<double> exponential_bounds(double start, double factor, std::size_t count);

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<u64>> buckets_;
  std::atomic<u64> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One begin/end marker recorded by a SpanScope (obs/trace.hpp).  `name`
/// must point at storage outliving the registry — in practice a string
/// literal at the BFLY_TRACE_SCOPE call site.
struct TraceEvent {
  const char* name = "";
  char phase = 'B';  ///< 'B' = span begin, 'E' = span end
  double ts_us = 0.0;
  u64 tid = 0;
};

/// A matched begin/end pair, produced by Registry::completed_spans().
struct CompletedSpan {
  std::string name;
  u64 tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
  int depth = 0;  ///< nesting depth within its thread (0 = outermost)
};

/// Percentile estimate (q in [0, 1]) interpolated from fixed-bucket histogram
/// data: `counts` has bounds.size() + 1 entries (trailing overflow bucket).
/// The CDF is taken piecewise linear across each bucket's value range — the
/// first bucket spans [min(0, bounds[0]), bounds[0]] — so distributions that
/// land one distinct value per bucket are recovered exactly.  Mass in the
/// unbounded overflow bucket is reported as bounds.back() (a lower bound on
/// the true percentile).  Returns 0 when there are no observations.
double estimate_percentile(std::span<const double> bounds, std::span<const u64> counts,
                           double q);

struct MetricsSnapshot {
  std::vector<std::pair<std::string, u64>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  struct Hist {
    std::string name;
    std::vector<double> bounds;
    std::vector<u64> counts;
    u64 count = 0;
    double sum = 0.0;

    double percentile(double q) const { return estimate_percentile(bounds, counts, q); }
  };
  std::vector<Hist> histograms;
};

/// The per-run sink for metrics and trace events.  Create one per process /
/// bench run, install it with ScopedRegistry, snapshot at the end.
class Registry {
 public:
  Registry() : t0_(std::chrono::steady_clock::now()) {}
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Named-handle lookup: creates on first use, returns the same stable
  /// pointer thereafter.  Takes the registry lock — hoist out of hot loops.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  /// `bounds` are used on first creation only; later lookups of the same
  /// name return the existing histogram regardless of the bounds argument.
  Histogram* histogram(std::string_view name, std::vector<double> bounds);

  /// Microseconds since this registry was created (steady clock).
  double now_us() const {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0_)
        .count();
  }

  void record(TraceEvent ev);

  MetricsSnapshot metrics_snapshot() const;
  std::vector<TraceEvent> trace_events() const;
  /// Pairs up begin/end events per thread (events from one thread are
  /// recorded in order, so a per-thread stack reconstructs the nesting).
  std::vector<CompletedSpan> completed_spans() const;

 private:
  const std::chrono::steady_clock::time_point t0_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::vector<TraceEvent> events_;
};

namespace detail {
inline std::atomic<Registry*> g_registry{nullptr};
}  // namespace detail

/// The process-wide registry instrumentation reports into; nullptr (the
/// default) disables all recording.
#if BFLY_OBS_ENABLED
inline Registry* registry() { return detail::g_registry.load(std::memory_order_acquire); }
#else
constexpr Registry* registry() { return nullptr; }
#endif

inline void set_registry(Registry* r) {
  detail::g_registry.store(r, std::memory_order_release);
}

/// RAII install/restore of the global registry.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(Registry* r) : previous_(registry()) { set_registry(r); }
  ~ScopedRegistry() { set_registry(previous_); }
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  Registry* previous_;
};

/// Hoistable handle lookups: nullptr when no registry is installed (or obs
/// is compiled out), so the matching record helpers below no-op.
inline Counter* get_counter(std::string_view name) {
  Registry* r = registry();
  return r ? r->counter(name) : nullptr;
}
inline Gauge* get_gauge(std::string_view name) {
  Registry* r = registry();
  return r ? r->gauge(name) : nullptr;
}
inline Histogram* get_histogram(std::string_view name, std::vector<double> bounds) {
  Registry* r = registry();
  return r ? r->histogram(name, std::move(bounds)) : nullptr;
}

inline void add(Counter* c, u64 delta = 1) {
  if (c) c->add(delta);
}
inline void set(Gauge* g, double v) {
  if (g) g->set(v);
}
inline void observe(Histogram* h, double v) {
  if (h) h->observe(v);
}

/// Single-thread accumulation buffer for one histogram: bucket locally in a
/// hot loop (no atomics, no shared cache lines), flush once at the end.
/// Null-tolerant like the helpers above — with a null target every call is a
/// predictable branch.
class LocalHistogram {
 public:
  explicit LocalHistogram(Histogram* target)
      : target_(target), counts_(target ? target->bounds().size() + 1 : 0, 0) {}

  void observe(double v) {
    if (target_ == nullptr) return;
    ++counts_[target_->bucket_index(v)];
    sum_ += v;
  }

  /// Merges the buffered counts into the target and resets the buffer.
  void flush() {
    if (target_ == nullptr) return;
    target_->merge(counts_, sum_);
    std::fill(counts_.begin(), counts_.end(), u64{0});
    sum_ = 0.0;
  }

 private:
  Histogram* target_;
  std::vector<u64> counts_;
  double sum_ = 0.0;
};

/// Small dense id for the calling thread (1, 2, ... in first-use order) —
/// stable within a process and friendlier in trace viewers than hashed
/// std::thread::id values.
u64 current_thread_id();

}  // namespace bfly::obs
