#include "obs/flight.hpp"

#include <algorithm>
#include <map>

#include "util/check.hpp"
#include "util/prng.hpp"

namespace bfly::obs {

namespace {

/// u64 <-> 16-digit hex, for the fields (seed, threshold) that need all 64
/// bits — JSON numbers are doubles and only exact below 2^53.
std::string hex16(u64 v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

u64 parse_hex16(const std::string& s) {
  BFLY_REQUIRE(!s.empty() && s.size() <= 16, "flight: hex field must be 1..16 digits");
  u64 v = 0;
  for (const char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      BFLY_REQUIRE(false, "flight: hex field has a non-hex digit");
      digit = 0;  // unreachable
    }
    v = (v << 4) | static_cast<u64>(digit);
  }
  return v;
}

}  // namespace

FlightRecorder::FlightRecorder(u64 sample_budget, u64 seed, u64 expected_packets, int n,
                               u64 rows)
    : budget_(sample_budget), seed_(seed), n_(n), rows_(rows) {
  if (budget_ == 0) return;
  if (expected_packets == 0) {
    threshold_ = ~u64{0};
    return;
  }
  // Target ~4x the budget through the hash gate so the hard cap (first
  // `budget` passers, a pure function of the stream prefix) does the final
  // bounding, front-loaded deterministically instead of leaving the budget
  // half-unused on short runs.
  const double rate = 4.0 * static_cast<double>(budget_) / static_cast<double>(expected_packets);
  threshold_ = rate >= 1.0 ? ~u64{0} : static_cast<u64>(rate * 0x1p64);
}

u64 FlightRecorder::on_packet(u64 cycle, u64 src, u64 dst) {
  const u64 id = packets_seen_++;
  if (budget_ == 0 || traces_.size() >= budget_) return 0;
  if (SplitMix64(seed_ ^ id).next() > threshold_) return 0;
  FlightTrace t;
  t.packet_id = id;
  t.src = src;
  t.dst = dst;
  t.injected_at = cycle;
  traces_.push_back(std::move(t));
  return traces_.size();
}

void FlightRecorder::on_hop(u64 handle, u64 cycle, u64 link, FlightEvent event) {
  BFLY_CHECK(handle >= 1 && handle <= traces_.size(), "flight: bad trace handle");
  FlightTrace& t = traces_[handle - 1];
  BFLY_CHECK(t.outcome == FlightOutcome::kInFlight, "flight: hop on a terminated trace");
  BFLY_CHECK(t.hops.empty() ? cycle >= t.injected_at : cycle > t.hops.back().cycle,
             "flight: hop cycles must increase");
  t.hops.push_back(FlightHop{cycle, link, event});
}

void FlightRecorder::on_delivered(u64 handle, u64 cycle) {
  BFLY_CHECK(handle >= 1 && handle <= traces_.size(), "flight: bad trace handle");
  FlightTrace& t = traces_[handle - 1];
  BFLY_CHECK(t.outcome == FlightOutcome::kInFlight, "flight: double termination");
  BFLY_CHECK(!t.hops.empty() && cycle > t.hops.back().cycle,
             "flight: delivery must follow the last hop");
  t.outcome = FlightOutcome::kDelivered;
  t.end_cycle = cycle;
}

void FlightRecorder::on_dropped(u64 handle, u64 cycle, u64 drop_reason) {
  BFLY_CHECK(handle >= 1 && handle <= traces_.size(), "flight: bad trace handle");
  FlightTrace& t = traces_[handle - 1];
  BFLY_CHECK(t.outcome == FlightOutcome::kInFlight, "flight: double termination");
  BFLY_CHECK(t.hops.empty() || cycle > t.hops.back().cycle,
             "flight: drop must follow the last hop");
  t.outcome = FlightOutcome::kDropped;
  t.end_cycle = cycle;
  t.drop_reason = drop_reason;
}

json::Value FlightRecorder::to_json() const {
  json::Value v = json::Value::object();
  v.set("v", json::Value::number(1));
  v.set("budget", json::Value::number(budget_));
  v.set("seed", json::Value::string(hex16(seed_)));
  v.set("threshold", json::Value::string(hex16(threshold_)));
  v.set("n", json::Value::number(n_));
  v.set("rows", json::Value::number(rows_));
  v.set("packets_seen", json::Value::number(packets_seen_));
  json::Value traces = json::Value::array();
  for (const FlightTrace& t : traces_) {
    json::Value tr = json::Value::object();
    tr.set("id", json::Value::number(t.packet_id));
    tr.set("src", json::Value::number(t.src));
    tr.set("dst", json::Value::number(t.dst));
    tr.set("injected_at", json::Value::number(t.injected_at));
    tr.set("outcome", json::Value::number(static_cast<int>(t.outcome)));
    tr.set("end_cycle", json::Value::number(t.end_cycle));
    tr.set("drop_reason", json::Value::number(t.drop_reason));
    json::Value hops = json::Value::array();
    for (const FlightHop& h : t.hops) {
      json::Value hop = json::Value::array();
      hop.push_back(json::Value::number(h.cycle));
      hop.push_back(json::Value::number(h.link));
      hop.push_back(json::Value::number(static_cast<int>(h.event)));
      hops.push_back(std::move(hop));
    }
    tr.set("hops", std::move(hops));
    traces.push_back(std::move(tr));
  }
  v.set("traces", std::move(traces));
  return v;
}

FlightRecorder FlightRecorder::from_json(const json::Value& v) {
  BFLY_REQUIRE(v.is_object(), "flight: not an object");
  BFLY_REQUIRE(v.at("v").as_u64() == 1, "flight: unknown format version");
  FlightRecorder r;
  r.budget_ = v.at("budget").as_u64();
  r.seed_ = parse_hex16(v.at("seed").as_string());
  r.threshold_ = parse_hex16(v.at("threshold").as_string());
  const u64 n = v.at("n").as_u64();
  BFLY_REQUIRE(n <= 30, "flight: dimension out of range");
  r.n_ = static_cast<int>(n);
  r.rows_ = v.at("rows").as_u64();
  r.packets_seen_ = v.at("packets_seen").as_u64();
  const json::Value& traces = v.at("traces");
  BFLY_REQUIRE(traces.is_array(), "flight: traces must be an array");
  BFLY_REQUIRE(traces.size() <= r.budget_, "flight: more traces than the budget admits");
  r.traces_.reserve(traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const json::Value& tr = traces.at(i);
    BFLY_REQUIRE(tr.is_object(), "flight: trace must be an object");
    FlightTrace t;
    t.packet_id = tr.at("id").as_u64();
    t.src = tr.at("src").as_u64();
    t.dst = tr.at("dst").as_u64();
    t.injected_at = tr.at("injected_at").as_u64();
    const u64 outcome = tr.at("outcome").as_u64();
    BFLY_REQUIRE(outcome <= 2, "flight: bad outcome code");
    t.outcome = static_cast<FlightOutcome>(outcome);
    t.end_cycle = tr.at("end_cycle").as_u64();
    t.drop_reason = tr.at("drop_reason").as_u64();
    BFLY_REQUIRE(t.outcome != FlightOutcome::kDropped || t.drop_reason <= kFlightDropKilledByFault,
                 "flight: bad drop reason code");
    const json::Value& hops = tr.at("hops");
    BFLY_REQUIRE(hops.is_array(), "flight: hops must be an array");
    t.hops.reserve(hops.size());
    for (std::size_t hi = 0; hi < hops.size(); ++hi) {
      const json::Value& hop = hops.at(hi);
      BFLY_REQUIRE(hop.is_array() && hop.size() == 3, "flight: hop must be [cycle, link, event]");
      FlightHop h;
      h.cycle = hop.at(std::size_t{0}).as_u64();
      h.link = hop.at(std::size_t{1}).as_u64();
      const u64 ev = hop.at(std::size_t{2}).as_u64();
      BFLY_REQUIRE(ev <= 3, "flight: bad hop event code");
      h.event = static_cast<FlightEvent>(ev);
      BFLY_REQUIRE(t.hops.empty() ? h.cycle >= t.injected_at : h.cycle > t.hops.back().cycle,
                   "flight: hop cycles must increase");
      t.hops.push_back(h);
    }
    BFLY_REQUIRE(t.outcome == FlightOutcome::kInFlight || t.hops.empty() ||
                     t.end_cycle > t.hops.back().cycle,
                 "flight: termination must follow the last hop");
    r.traces_.push_back(std::move(t));
  }
  return r;
}

bool operator==(const FlightRecorder& a, const FlightRecorder& b) {
  if (a.budget_ != b.budget_ || a.seed_ != b.seed_ || a.threshold_ != b.threshold_ ||
      a.n_ != b.n_ || a.rows_ != b.rows_ || a.packets_seen_ != b.packets_seen_ ||
      a.traces_.size() != b.traces_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.traces_.size(); ++i) {
    const FlightTrace& x = a.traces_[i];
    const FlightTrace& y = b.traces_[i];
    if (x.packet_id != y.packet_id || x.src != y.src || x.dst != y.dst ||
        x.injected_at != y.injected_at || x.outcome != y.outcome ||
        x.end_cycle != y.end_cycle || x.drop_reason != y.drop_reason ||
        x.hops.size() != y.hops.size()) {
      return false;
    }
    for (std::size_t h = 0; h < x.hops.size(); ++h) {
      if (x.hops[h].cycle != y.hops[h].cycle || x.hops[h].link != y.hops[h].link ||
          x.hops[h].event != y.hops[h].event) {
        return false;
      }
    }
  }
  return true;
}

std::vector<u64> flight_hop_waits(const FlightTrace& trace) {
  std::vector<u64> waits;
  if (trace.hops.empty()) return waits;
  // A hop's wait is known once its departure cycle is: the next hop's entry,
  // or the terminal cycle for the last hop of a terminated trace.
  const std::size_t known = trace.outcome == FlightOutcome::kInFlight ? trace.hops.size() - 1
                                                                      : trace.hops.size();
  waits.reserve(known);
  for (std::size_t i = 0; i < known; ++i) {
    const u64 enter = trace.hops[i].cycle;
    const u64 depart = i + 1 < trace.hops.size() ? trace.hops[i + 1].cycle : trace.end_cycle;
    BFLY_CHECK(depart > enter, "flight: hop departure must follow its entry");
    waits.push_back(depart - enter - 1);
  }
  return waits;
}

FlightDecomposition decompose_flight(const FlightTrace& trace, int n) {
  BFLY_REQUIRE(n >= 1, "butterfly dimension must be >= 1");
  BFLY_REQUIRE(trace.outcome == FlightOutcome::kDelivered,
               "decomposition is defined for delivered traces");
  const u64 stages = static_cast<u64>(n);
  const u64 h = trace.hops.size();
  // Every pass through the fabric is exactly n hops (misroutes deflect but
  // still advance a stage), so a delivered trace's hop count is a positive
  // multiple of n.
  BFLY_REQUIRE(h >= stages && h % stages == 0,
               "a delivered trace traverses n hops per pass");
  FlightDecomposition d;
  d.latency = trace.end_cycle + 1 - trace.injected_at;
  d.transit = stages + 1;
  d.detour = h - stages;
  u64 wait_sum = 0;
  for (const u64 w : flight_hop_waits(trace)) wait_sum += w;
  d.queue_wait = wait_sum;
  // The invariant this module promises: recomputing the wait from the hop
  // cycles must land exactly on latency - transit - detour.  A recorder bug
  // (missed hop, skewed cycle) fails here instead of decomposing plausibly.
  BFLY_CHECK(d.queue_wait + d.transit + d.detour == d.latency,
             "flight decomposition must sum exactly to the end-to-end latency");
  return d;
}

FlightBlame flight_blame(std::span<const FlightTrace> traces, int n, u64 rows) {
  BFLY_REQUIRE(n >= 1, "butterfly dimension must be >= 1");
  BFLY_REQUIRE(rows >= 1, "rows must be >= 1");
  struct Acc {
    u64 visits = 0;
    u64 wait_sum = 0;
    std::vector<u64> waits;
  };
  std::map<u64, Acc> by_link;  // ordered: deterministic iteration
  FlightBlame blame;
  blame.stage_wait_sum.assign(static_cast<std::size_t>(n), 0);
  blame.stage_visits.assign(static_cast<std::size_t>(n), 0);
  for (const FlightTrace& t : traces) {
    const std::vector<u64> waits = flight_hop_waits(t);
    for (std::size_t i = 0; i < waits.size(); ++i) {
      const u64 link = t.hops[i].link;
      Acc& acc = by_link[link];
      ++acc.visits;
      acc.wait_sum += waits[i];
      acc.waits.push_back(waits[i]);
      const u64 stage = link / (rows * 2);
      BFLY_CHECK(stage < static_cast<u64>(n), "flight: hop link outside the fabric");
      ++blame.stage_visits[static_cast<std::size_t>(stage)];
      blame.stage_wait_sum[static_cast<std::size_t>(stage)] += waits[i];
    }
  }
  blame.links.reserve(by_link.size());
  for (auto& [link, acc] : by_link) {
    std::sort(acc.waits.begin(), acc.waits.end());
    LinkBlame lb;
    lb.link = link;
    lb.stage = static_cast<int>(link / (rows * 2));
    lb.visits = acc.visits;
    lb.wait_sum = acc.wait_sum;
    lb.wait_max = acc.waits.back();
    // Nearest-rank p99: the ceil(0.99 * count)-th smallest (1-based).
    const std::size_t count = acc.waits.size();
    const std::size_t rank = (99 * count + 99) / 100;  // ceil(0.99 * count)
    lb.wait_p99 = acc.waits[rank - 1];
    blame.links.push_back(lb);
  }
  std::sort(blame.links.begin(), blame.links.end(), [](const LinkBlame& a, const LinkBlame& b) {
    if (a.wait_sum != b.wait_sum) return a.wait_sum > b.wait_sum;
    return a.link < b.link;
  });
  return blame;
}

i64 flight_distance(const FlightTrace& trace, std::span<const i64> link_lengths) {
  i64 total = 0;
  for (const FlightHop& h : trace.hops) {
    BFLY_REQUIRE(h.link < link_lengths.size(), "flight: hop link outside the length table");
    total += link_lengths[static_cast<std::size_t>(h.link)];
  }
  return total;
}

std::string flight_chrome_trace_json(std::span<const FlightTrace> traces, u64 rows) {
  static constexpr const char* kEventNames[] = {"inject", "advance", "misroute", "wrap"};
  json::Value events = json::Value::array();
  for (const FlightTrace& t : traces) {
    const std::vector<u64> waits = flight_hop_waits(t);
    for (std::size_t i = 0; i < waits.size(); ++i) {
      const FlightHop& h = t.hops[i];
      const u64 depart = i + 1 < t.hops.size() ? t.hops[i + 1].cycle : t.end_cycle;
      json::Value e = json::Value::object();
      std::string name = kEventNames[static_cast<int>(h.event)];
      if (rows > 0) name = "stage" + std::to_string(h.link / (rows * 2)) + " " + name;
      e.set("name", json::Value::string(std::move(name)));
      e.set("cat", json::Value::string("bfly.flight"));
      e.set("ph", json::Value::string("X"));
      e.set("ts", json::Value::number(h.cycle));
      e.set("dur", json::Value::number(depart - h.cycle));
      e.set("pid", json::Value::number(1));
      e.set("tid", json::Value::number(t.packet_id));
      json::Value args = json::Value::object();
      args.set("link", json::Value::number(h.link));
      args.set("wait", json::Value::number(waits[i]));
      e.set("args", std::move(args));
      events.push_back(std::move(e));
    }
    if (t.outcome != FlightOutcome::kInFlight) {
      json::Value e = json::Value::object();
      e.set("name", json::Value::string(
                        t.outcome == FlightOutcome::kDelivered
                            ? std::string("deliver")
                            : "drop reason " + std::to_string(t.drop_reason)));
      e.set("cat", json::Value::string("bfly.flight"));
      e.set("ph", json::Value::string("i"));
      e.set("ts", json::Value::number(t.end_cycle));
      e.set("s", json::Value::string("t"));
      e.set("pid", json::Value::number(1));
      e.set("tid", json::Value::number(t.packet_id));
      events.push_back(std::move(e));
    }
  }
  json::Value doc = json::Value::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", json::Value::string("ms"));
  return doc.dump();
}

}  // namespace bfly::obs
