// Cycle-resolved, deterministic time-series telemetry for the packet engines.
//
// A TimeSeries is a fixed-budget sample store keyed purely by *simulation
// cycle* — never by wall clock — so the samples a run produces are bitwise
// identical across thread counts, across checkpoint kill/resume replay, and
// across machines.  The downsampling rule is power-of-two cycle-indexed
// thinning: a sample is retained iff `cycle % stride == 0`, and when the
// store would exceed its budget the stride doubles and the retained rows are
// thinned in place.  Because stride is always a power of two and sampling
// starts at cycle 0, the retained cycles are *consecutive multiples* of the
// current stride — equally spaced — which is what makes plain arithmetic
// means over a sample window time-weighted means, and what makes the whole
// structure a pure function of the cycle sequence (no RNG, no clocks, no
// thread-count dependence).
//
// On top of the raw samples sit two analytics used as correctness oracles:
//   * steady_state_onset — a rolling-window warmup cutoff: the first sample
//     from which the windowed mean of a channel stays within tolerance of
//     the run's tail mean.
//   * littles_law_check — the queueing-law self-check L ≈ λW computed from
//     the cumulative delivered/latency channels over the steady window.  A
//     rewritten engine that miscounts occupancy, deliveries, or latency in
//     any inconsistent way fails this check.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "util/bits.hpp"

namespace bfly::obs {

/// Channel names the engines emit (see routing/fault instrumentation):
/// "stage<k>" per-stage queue occupancy, then these aggregate channels.
inline constexpr std::string_view kChannelInFlight = "in_flight";
inline constexpr std::string_view kChannelInjected = "injected";    // cumulative
inline constexpr std::string_view kChannelDelivered = "delivered";  // cumulative
inline constexpr std::string_view kChannelDropped = "dropped";      // cumulative
inline constexpr std::string_view kChannelLatencySum = "latency_sum";  // cumulative
inline constexpr std::string_view kChannelArenaFill = "arena_fill";    // live/capacity
inline constexpr std::string_view kChannelDeadLinks = "dead_links";    // live fault epoch

/// Fixed-budget multi-channel sample store with deterministic power-of-two
/// cycle-indexed downsampling.  Rows are (cycle, values[num_channels]).
class TimeSeries {
 public:
  /// `sample_budget` caps the number of retained rows (>= 2).  The stride
  /// doubles whenever a record would push the row count past the budget.
  explicit TimeSeries(u64 sample_budget = 256);

  /// Clears all samples and installs the channel layout.  Engines call this
  /// once before the cycle loop; the channel list is part of the identity
  /// compared by operator==.
  void reset_channels(std::vector<std::string> channels);

  /// True iff `cycle` would be retained at the current stride.  Engines use
  /// this to skip the (O(links)) gather on non-sampling cycles; it is the
  /// only per-cycle cost when sampling is enabled.
  bool want(u64 cycle) const { return (cycle & (stride_ - 1)) == 0; }

  /// Records one row.  Ignored unless want(cycle); cycles must be presented
  /// in strictly increasing order; values.size() must equal num_channels().
  void record(u64 cycle, std::span<const double> values);

  u64 sample_budget() const { return budget_; }
  u64 stride() const { return stride_; }
  std::size_t num_samples() const { return cycles_.size(); }
  std::size_t num_channels() const { return channels_.size(); }
  bool empty() const { return cycles_.empty(); }
  const std::vector<std::string>& channels() const { return channels_; }
  const std::vector<u64>& cycles() const { return cycles_; }

  /// Index of `name` in channels(), or npos when absent.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t channel_index(std::string_view name) const;

  double value(std::size_t row, std::size_t channel) const;
  /// One whole row (num_channels values), in channel order.
  std::span<const double> row(std::size_t index) const;
  /// One whole channel as a fresh column vector (row order).
  std::vector<double> channel_values(std::size_t channel) const;

  /// Stable JSON encoding (schema-v2 `timeseries` block and the checkpoint
  /// journal payload).  Doubles round-trip exactly via the %.17g encoder.
  json::Value to_json() const;
  static TimeSeries from_json(const json::Value& v);

  /// Bitwise equality: channels, cycles, stride, budget, and every sample
  /// compared by bit pattern (not epsilon) — the replay-identity contract.
  friend bool operator==(const TimeSeries& a, const TimeSeries& b);

 private:
  void thin();  // stride_ *= 2, drop rows whose cycle is an odd multiple

  u64 budget_;
  u64 stride_ = 1;
  std::vector<std::string> channels_;
  std::vector<u64> cycles_;
  std::vector<double> data_;  // row-major, cycles_.size() x channels_.size()
};

/// Result of the rolling-window warmup cutoff.
struct SteadyState {
  bool found = false;
  std::size_t sample_index = 0;  // first steady sample (when found)
  u64 cycle = 0;                 // its cycle (when found)
};

/// First sample index from which the mean of `channel` over a `window`-sample
/// rolling window stays within `tolerance` (relative) of the tail reference
/// mean (the mean over the last half of the samples).  Needs at least
/// 2 * window samples; otherwise found = false.
SteadyState steady_state_onset(const TimeSeries& ts, std::string_view channel,
                               std::size_t window = 8, double tolerance = 0.10);

/// Little's-law consistency check over the steady part of a run.
struct LittlesLawCheck {
  bool applicable = false;  // channels present and a steady window with deliveries
  bool pass = false;
  double l = 0.0;        // mean in-flight packets over the steady window
  double lambda = 0.0;   // deliveries per cycle over the steady window
  double w = 0.0;        // mean delivered latency (cycles) over the steady window
  double rel_error = 0.0;  // |l - lambda*w| / max(l, lambda*w)
  u64 steady_from_cycle = 0;
};

/// Computes L, λ, and W from the in_flight / delivered / latency_sum channels
/// over [steady-state onset, last sample] and passes iff the relative error
/// is within `tolerance`.  Falls back to the second half of the samples when
/// the onset detector finds nothing.
LittlesLawCheck littles_law_check(const TimeSeries& ts, double tolerance = 0.15);

/// Fixed-budget sequence of full per-link occupancy snapshots for the
/// heatmap-over-time renderer.  Same power-of-two cycle-indexed thinning as
/// TimeSeries, but each row is one value per arena link, so the budget is
/// kept small (a handful of frames).  Not part of checkpoints or reports.
class OccupancyFrames {
 public:
  explicit OccupancyFrames(u64 frame_budget = 8);

  bool want(u64 cycle) const { return (cycle & (stride_ - 1)) == 0; }
  void record(u64 cycle, std::span<const double> link_occupancy);

  u64 stride() const { return stride_; }
  std::size_t num_frames() const { return cycles_.size(); }
  bool empty() const { return cycles_.empty(); }
  const std::vector<u64>& cycles() const { return cycles_; }
  std::span<const double> frame(std::size_t index) const;
  std::size_t num_links() const { return num_links_; }

 private:
  void thin();

  u64 budget_;
  u64 stride_ = 1;
  std::size_t num_links_ = 0;
  std::vector<u64> cycles_;
  std::vector<double> data_;  // row-major, cycles_.size() x num_links_
};

/// Value of $BFLY_TELEMETRY_FILE, or "" when unset/empty.  The exec driver
/// appends live-progress JSONL records to this path (see exec::SweepRunOptions
/// and `bflyreport watch`).
std::string telemetry_path_from_env();

/// Appends `record` as one JSONL line via util::append_line_durable: the line
/// is fsynced before return, and a crash mid-append leaves at most one torn
/// tail line, which `bflyreport watch` (like the checkpoint loader) skips.
void append_telemetry_line(const std::string& path, const json::Value& record);

}  // namespace bfly::obs
