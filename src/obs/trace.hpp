// RAII span tracing.  Wrap a phase in
//
//   BFLY_TRACE_SCOPE("collinear.assign_tracks");
//
// and, when a Registry is installed, a begin/end event pair with wall-clock
// timestamps and the calling thread's id is recorded.  Spans nest (scopes
// close LIFO per thread), so the recorded stream is strictly nested per
// thread — exactly the discipline Chrome's trace-event format requires for
// 'B'/'E' duration events.
//
// chrome_trace_json() exports the whole stream as a trace-event JSON
// document that loads directly in https://ui.perfetto.dev or
// chrome://tracing.
//
// Cost: one global pointer load when the scope opens; when a registry is
// installed, a mutex-guarded vector push per begin/end.  Spans mark *phases*
// (layout stages, legality sweeps, census merges), not per-packet events —
// use counters/histograms (obs/metrics.hpp) for those.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

namespace bfly::obs {

/// Records a begin event on construction and the matching end on
/// destruction.  `name` must be a string literal (or otherwise outlive the
/// registry).  No-op when no registry is installed at construction time.
class SpanScope {
 public:
  explicit SpanScope(const char* name) : registry_(registry()), name_(name) {
    if (registry_) {
      registry_->record(TraceEvent{name_, 'B', registry_->now_us(), current_thread_id()});
    }
  }
  ~SpanScope() {
    if (registry_) {
      registry_->record(TraceEvent{name_, 'E', registry_->now_us(), current_thread_id()});
    }
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  Registry* registry_;
  const char* name_;
};

/// Chrome trace-event JSON (the "JSON Object Format": {"traceEvents": [...]})
/// for everything recorded so far.
std::string chrome_trace_json(const Registry& registry);

/// Writes chrome_trace_json() to a stream (e.g. an .trace.json file).
void write_chrome_trace(std::ostream& os, const Registry& registry);

}  // namespace bfly::obs

#if BFLY_OBS_ENABLED
#define BFLY_OBS_CONCAT_IMPL(a, b) a##b
#define BFLY_OBS_CONCAT(a, b) BFLY_OBS_CONCAT_IMPL(a, b)
#define BFLY_TRACE_SCOPE(name) \
  const ::bfly::obs::SpanScope BFLY_OBS_CONCAT(bfly_obs_span_, __LINE__)(name)
#else
#define BFLY_TRACE_SCOPE(name) static_cast<void>(0)
#endif
